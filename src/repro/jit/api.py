"""The Lancet facade: explicit JIT compilation for MiniJVM programs.

Typical host-side use::

    from repro import Lancet

    jit = Lancet()
    jit.load(minij_source)
    result = jit.vm.call("Main", "main")           # interpreted
    fast = jit.compile_function("Main", "work")     # explicit compilation
    fast(42)                                        # compiled execution

Guest code can equally invoke the JIT itself via ``Lancet.compile(f)``
(the paper's primary mode), plus the whole surgical toolbox: ``freeze``,
``unroll``, ``ntimes``, inlining directives, ``speculate``/``stable``,
``slowpath``/``fastpath``, ``checkNoAlloc``, taint tracking, and the
Delite accelerator macros.
"""

from __future__ import annotations

import dataclasses
import time

from repro.analysis.diagnostics import Diagnostics
from repro.bytecode.verifier import verify_method
from repro.compiler.deopt import reconstruct_frames
from repro.compiler.options import CompileOptions
from repro.compiler.stagedinterp import (AbstractFrame, MachineState,
                                         StagedInterpreter)
from repro.errors import (CompilationError, CompilationWarningList,
                          DeoptStateError, GuestTypeError,
                          TranslationValidationError)
from repro.interp.interpreter import Interpreter
from repro.lms.rep import Sym
from repro.macros.registry import MacroRegistry
from repro.observability import CompileReport, Telemetry
from repro.pipeline.backend import CompilationUnit, get_backend
from repro.pipeline.passes import PassManager
from repro.pipeline.tiers import TierController
from repro.runtime.objects import Obj


class Lancet:
    """A VM plus an explicitly-invokable JIT compiler."""

    def __init__(self, vm=None, options=None, telemetry=None):
        self.vm = vm if vm is not None else Interpreter()
        self.vm.jit = self
        self.options = options if options is not None else CompileOptions()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.vm.telemetry = self.telemetry
        self.vm.profiler.telemetry = self.telemetry
        self.macros = MacroRegistry()
        self.macros.telemetry = self.telemetry
        from repro.macros.core import install_core_macros
        install_core_macros(self.macros)
        self.compile_log = []     # (unit name, CompiledFunction)
        from repro.jit.cache import CodeCache
        # Unit cache: one entry per (method, specialization, options); lets
        # repeated compile_function/compile_method calls share code.
        self.unit_cache = CodeCache(telemetry=self.telemetry,
                                    name="unit_cache")
        from repro.delite.runtime import DeliteRuntime
        self.delite = DeliteRuntime(parsafe=self.options.parsafe)
        self.delite.telemetry = self.telemetry
        self.vm.delite = self.delite
        # Tier machinery: unit registry, deopt-driven demotion, and OSR
        # tier-up off interpreter loop back-edges.
        self.tiers = TierController(self)
        # Persistent code cache (warm starts across processes) and the
        # asynchronous CompileService; both off by default. Creation is
        # best-effort: a bad cache dir disables persistence, it never
        # fails VM construction.
        import os as _os
        self.codecache = None
        if (self.options.cache_dir and self.options.persist
                and not _os.environ.get("REPRO_NO_PERSIST")):
            from repro.codecache import PersistentCodeCache
            self.codecache = PersistentCodeCache(
                self.options.cache_dir,
                budget_bytes=self.options.cache_budget_bytes,
                telemetry=self.telemetry)
        self.compile_service = None
        if self.options.compile_workers > 0:
            from repro.codecache import CompileService
            self.compile_service = CompileService(
                workers=self.options.compile_workers,
                telemetry=self.telemetry)
        # Compile-server client: attach explicitly via
        # attach_compile_server(), or process-wide via
        # REPRO_COMPILE_SERVER=<cache-dir> (every Lancet in the process
        # becomes a tenant of one shared server over that directory).
        self.compile_server = None
        self.loaded_sources = []   # (source, module), for manifest export
        server_dir = _os.environ.get("REPRO_COMPILE_SERVER")
        if server_dir:
            from repro.server import shared_server
            try:
                self.attach_compile_server(shared_server(server_dir))
            except Exception as exc:
                self.telemetry.record("server.attach_failed",
                                      error=str(exc))
        # Tier T, the trace-recording tier: explicit opt-in (options or
        # REPRO_TRACE_TIER=1), like every other piece of policy here.
        if self.options.trace_tier or _os.environ.get("REPRO_TRACE_TIER"):
            self.enable_trace_tier()

    # -- loading -----------------------------------------------------------------

    def load(self, source, module="Main"):
        from repro.frontend.compiler import compile_source
        classes = self.vm.load_classes(compile_source(source, module=module))
        self.loaded_sources.append((source, module))
        return classes

    def install_macro(self, class_name, method_name, fn):
        self.macros.install(class_name, method_name, fn)

    def install_macros(self, class_name, macros_obj):
        self.macros.install_class(class_name, macros_obj)

    def mark_stable(self, class_name, field_name):
        """Declare ``class.field`` @stable (paper 3.2)."""
        self.vm.linker.mark_stable_field(class_name, field_name)

    # -- explicit compilation (paper Fig. 2: compile[T,U]) --------------------------

    def compile_closure(self, closure, options=None):
        """JIT-compile a guest closure; returns a callable
        :class:`CompiledFunction` specialized to the closure's captured
        state (partial evaluation against live heap objects)."""
        if not isinstance(closure, Obj):
            raise GuestTypeError("compile() needs a guest closure, got %r"
                                 % (closure,))
        method = closure.cls.lookup_method("apply")
        if method is None:
            raise GuestTypeError("compile(): %s has no apply method"
                                 % closure.cls.name)

        def rebuild():
            return self._compile_unit(
                method, receiver=closure, options=options,
                name="%s.apply" % closure.cls.name, recompile=rebuild)

        return rebuild()

    def compile_function(self, class_name, method_name, options=None):
        """JIT-compile a static guest method for dynamic arguments.

        Results are memoized in :attr:`unit_cache` per (method,
        specialization, options) — a second call for the same unit is a
        cache hit, not a recompilation (disable with
        ``CompileOptions(unit_cache=False)``).
        """
        method = self.vm.linker.resolve_static(class_name, method_name)

        def rebuild():
            return self._compile_unit(
                method, receiver=None, options=options,
                name=method.qualified_name, recompile=rebuild)

        return self._cached_unit(method, None, options, rebuild)

    def compile_method(self, class_name, method_name, receiver,
                       options=None):
        """JIT-compile an instance method against a specific receiver.
        Memoized per (method, receiver identity, options) like
        :meth:`compile_function`."""
        cls = self.vm.linker.resolve_class(class_name)
        method = self.vm.linker.resolve_virtual(cls, method_name)

        def rebuild():
            return self._compile_unit(
                method, receiver=receiver, options=options,
                name=method.qualified_name, recompile=rebuild)

        return self._cached_unit(method, receiver, options, rebuild)

    def compile_tiered(self, class_name, method_name, policy=None):
        """Hand a static guest method to the tier ladder (paper 3.1).

        Returns a callable :class:`~repro.pipeline.tiers.TieredFunction`
        that starts interpreted with profiling counters (Tier 0),
        promotes to a quick Tier-1 compile and then the full Tier-2
        optimizing compile as invocation counts cross the policy
        thresholds, tiers up mid-loop via OSR, and demotes on deopt
        storms.
        """
        return self.tiers.tiered_function(class_name, method_name,
                                          policy=policy)

    def prefetch(self, class_name, method_name, tier=None):
        """Warm a unit ahead of use. With an async compiler (a local
        CompileService or an attached compile server) this submits at the
        lowest priority and returns the request handle. **Without one it
        degrades to a synchronous persistent-cache probe**: a warm-start
        lookup only — a cached unit is rehydrated and installed, but a
        cold miss never triggers a compile. Returns the CompiledFunction
        on a synchronous warm hit, ``None`` on a cold miss with no
        service."""
        from repro.pipeline.tiers import tier_options
        opts = (tier_options(self.options, tier)
                if tier is not None else self.options)
        service = self.async_compiler
        if service is None:
            return self._prefetch_probe(class_name, method_name, opts)
        from repro.codecache.service import PRIORITY_PREFETCH
        return service.submit(
            ("prefetch", class_name, method_name, opts.tier),
            lambda: self.compile_function(class_name, method_name,
                                          options=opts),
            priority=PRIORITY_PREFETCH)

    def _prefetch_probe(self, class_name, method_name, opts):
        """Synchronous prefetch fallback: warm-start lookup only, no
        compile. A hit lands in the unit cache exactly as an async
        prefetch would; a miss returns ``None`` untouched."""
        if self.codecache is None or not opts.unit_cache:
            return None
        try:
            method = self.vm.linker.resolve_static(class_name, method_name)
        except Exception:
            return None
        kind = ("baseline" if self._baseline_eligible(method, None, opts)
                else "unit")
        fingerprint = self.codecache.fingerprint(self, method, opts,
                                                 kind=kind)
        compiled = self.codecache.load(fingerprint, self, kind=kind)
        if compiled is None:
            self.telemetry.record("prefetch.cold", unit="%s.%s"
                                  % (class_name, method_name))
            return None
        self.compile_log.append((compiled.name, compiled))
        key = self._unit_key(method, None, opts)
        return self.unit_cache.get_or_else_update(key, lambda: compiled)

    def attach_compile_server(self, server, tenant=None):
        """Become a tenant of a shared
        :class:`~repro.server.daemon.CompileServer`: this VM's persistent
        cache is replaced by the server's sharded store (one tenant's
        compile is every tenant's warm hit), and async compiles — tier
        promotions, OSR, traces, prefetch — route through the server's
        fair bounded queue. The local CompileService (if any) is kept as
        the fallback for a server that dies mid-flight.

        Returns the :class:`~repro.server.client.ServerClient`.
        """
        from repro.server.client import ServerClient
        self.compile_server = ServerClient(self, server, tenant=tenant)
        if server.store is not None:
            self.codecache = server.store
        return self.compile_server

    @property
    def async_compiler(self):
        """The live asynchronous compile sink: the compile-server client
        while the server is up, else the local CompileService, else
        ``None`` (callers then compile synchronously or skip)."""
        client = self.compile_server
        if client is not None and client.alive:
            return client
        return self.compile_service

    def export_manifest(self, path):
        """Write this VM's warm-start manifest (loaded sources + compiled
        units) for ``repro serve --warm`` prewarming."""
        from repro.server.manifest import write_manifest
        return write_manifest(self, path)

    def enable_trace_tier(self):
        """Arm Tier T: hot loop back-edges record linear traces that
        compile through the same pipeline and caches as method units
        (see :mod:`repro.pipeline.tracing`). Idempotent; flips the VM
        into profiling mode (back-edge counters feed the policy)."""
        if self.tiers.traces is None:
            from repro.pipeline.tracing import TraceManager
            self.tiers.traces = TraceManager(self)
            self.vm.profile = True
        return self.tiers.traces

    def close(self):
        """Shut down background machinery (compile workers). Safe to
        call more than once; the VM stays usable (compiles turn
        synchronous). Detaches from a compile server without closing it
        — the server outlives its tenants by design."""
        if self.compile_service is not None:
            self.compile_service.close()
            self.compile_service = None
        self.compile_server = None

    # -- internals -------------------------------------------------------------------

    def _unit_key(self, method, receiver, options):
        """Unit-cache key: (method, specialization, options). The options
        tuple includes the tier, so each tier's code is a distinct entry —
        tier transitions replace the old entry explicitly."""
        opts = options or self.options
        return (id(method), method.qualified_name,
                id(receiver) if receiver is not None else None,
                dataclasses.astuple(opts))

    def _baseline_eligible(self, method, receiver, options):
        """Whether this unit takes the template-baseline tier-1 path:
        opted in, Tier 1, a plain static method (no receiver
        specialization), on a CPython the assembler targets."""
        if (options.tier != 1 or not options.baseline
                or receiver is not None or not method.is_static):
            return False
        from repro.baseline import baseline_supported
        return baseline_supported()

    def _cached_unit(self, method, receiver, options, rebuild):
        opts = options or self.options
        if not opts.unit_cache:
            return rebuild()
        key = self._unit_key(method, receiver, opts)
        # Warm-start path: consult the persistent cache before compiling
        # anything. Receiver-specialized units are identity-bound to this
        # process's heap and never persist.
        if self.codecache is not None and receiver is None:
            kind = ("baseline"
                    if self._baseline_eligible(method, None, opts)
                    else "unit")
            fingerprint = self.codecache.fingerprint(self, method, opts,
                                                     kind=kind)

            def load_or_build():
                compiled = self.codecache.load(fingerprint, self,
                                               recompile=rebuild,
                                               kind=kind)
                if compiled is not None:
                    self.compile_log.append((compiled.name, compiled))
                    return compiled
                compiled = rebuild()
                self.codecache.store(fingerprint, compiled, opts)
                return compiled

            def coordinated():
                # Cross-VM single-flight: when attached to a compile
                # server, the first tenant to want this fingerprint
                # compiles it; tenants arriving mid-compile wait and
                # rehydrate from the then-warm shared store.
                client = self.compile_server
                if client is not None and client.alive:
                    return client.coordinate(fingerprint, load_or_build)
                return load_or_build()

            return self.unit_cache.get_or_else_update(key, coordinated)
        return self.unit_cache.get_or_else_update(key, rebuild)

    def _initial_scope(self, options):
        scope = {"inline": options.inline_policy}
        if options.check_noalloc:
            scope["noalloc"] = True
        if options.check_taint:
            scope["checktaint"] = True
        return scope

    def _compile_unit(self, method, receiver, options=None, name="unit",
                      recompile=None, entry_frames=None, diagnostics=None):
        options = options or self.options
        # Tier-1 routing: eligible units take the template baseline
        # derived from the interpreter's handler table — no staging, no
        # PassManager, no exec-compile. OSR continuations
        # (entry_frames) and analyze() runs always stage: they need
        # mid-method entry / collected diagnostics the templates do not
        # model. BaselineUnsupported degrades to the staged path.
        if (entry_frames is None and diagnostics is None
                and self._baseline_eligible(method, receiver, options)):
            from repro.baseline import BaselineUnsupported, compile_baseline
            try:
                return compile_baseline(self, method, options,
                                        recompile=recompile, name=name)
            except BaselineUnsupported:
                pass
        tel = self.telemetry
        tel.record("compile.start", unit=name, tier=options.tier)
        t_start = time.perf_counter()
        report = CompileReport(name=name, tier=options.tier)
        machine = StagedInterpreter(self.vm, self.macros, options,
                                    telemetry=tel)
        scope = self._initial_scope(options)

        if options.verify_bytecode:
            t0 = time.perf_counter()
            if entry_frames is None:
                verify_method(method)
            else:
                for cf in entry_frames:
                    verify_method(cf.method)
            report.phases["verify_bytecode"] = time.perf_counter() - t0

        if entry_frames is None:
            nparams = method.num_params
            param_names = ["a%d" % (i + 1) for i in range(nparams)]

            def build_entry():
                frame = AbstractFrame(method, scope=dict(scope))
                base = 0
                if not method.is_static:
                    frame.locals[0] = machine.ctx.lift(receiver)
                    base = 1
                for i in range(nparams):
                    frame.locals[base + i] = Sym(param_names[i])
                return MachineState(frame)
        else:
            param_names = []

            def build_entry():
                parent = None
                for cf in entry_frames:
                    af = AbstractFrame(cf.method, parent=parent,
                                       scope=dict(scope))
                    af.bci = cf.bci
                    for i in range(cf.method.num_locals):
                        af.locals[i] = machine.ctx.lift(cf.get_local(i))
                    for v in cf.stack_values():
                        af.push(machine.ctx.lift(v))
                    parent = af
                return MachineState(parent)

        t0 = time.perf_counter()
        result = machine.compile_unit(build_entry, param_names)
        report.phases["staging"] = time.perf_counter() - t0
        report.passes = machine.pass_count
        report.inlines = machine.inline_count
        report.residual_calls = machine.residual_count
        report.guards_installed = machine.guard_count
        report.deopt_sites = machine.deopt_site_count
        report.unroll_clones = machine.unroll_clone_count
        report.macro_expansions = machine.macro_count
        try:
            compiled = self._emit(result, param_names, name, recompile,
                                  fuse=options.delite_fusion, report=report,
                                  options=options, diagnostics=diagnostics)
        except (TranslationValidationError, DeoptStateError) as exc:
            # A speculation-soundness checker rejected the optimized IR.
            # The pipeline mutates IR in place, so re-stage from scratch
            # with the offending pass off (or, when the failure cannot be
            # pinned on one gated pass, with the whole optional set off
            # and validation disarmed — guaranteeing termination).
            return self._revalidate_fallback(exc, method, receiver,
                                             options, name, recompile,
                                             entry_frames, diagnostics)
        if options.warnings_as_errors and result.warnings:
            raise CompilationWarningList(result.warnings)
        report.warnings = len(compiled.warnings)
        compiled.report = report
        compiled.tier = options.tier
        for obj, field in result.stable_deps:
            obj.add_stable_dep(field, compiled)
        self.compile_log.append((name, compiled))

        total = time.perf_counter() - t_start
        tel.inc("compiles")
        tel.inc("compiles.tier%d" % options.tier)
        tel.observe("compile.tier%d.total" % options.tier, total)
        tel.inc("inlines", machine.inline_count)
        tel.inc("residual_calls", machine.residual_count)
        tel.inc("guards_installed", machine.guard_count)
        tel.inc("deopt_sites", machine.deopt_site_count)
        tel.inc("unroll_clones", machine.unroll_clone_count)
        tel.inc("macro.expansions", machine.macro_count)
        tel.observe("compile.total", total)
        for phase, seconds in report.phases.items():
            tel.observe("compile.phase.%s" % phase, seconds)
        tel.record("compile.end", unit=name, tier=options.tier,
                   seconds=total,
                   passes=report.passes, blocks=report.blocks,
                   stmts=report.stmts, inlines=report.inlines,
                   guards=report.guards_installed,
                   deopt_sites=report.deopt_sites,
                   unroll_clones=report.unroll_clones,
                   warnings=report.warnings)
        return compiled

    def _revalidate_fallback(self, exc, method, receiver, options, name,
                             recompile, entry_frames, diagnostics):
        """Unvalidated-pass-off recompile after a validation reject: turn
        off exactly the pass the translation validator blamed (keeping
        the checkers armed for the retry), or — when the finding cannot
        be attributed to one flag-gated pass — turn off every optional
        pass and the checkers themselves."""
        from repro.pipeline.passes import _PASS_FLAG
        pass_name = getattr(exc, "pass_name", "")
        flag = _PASS_FLAG.get(pass_name)
        self.telemetry.inc("validate.rejects")
        self.telemetry.record("validate.reject", unit=name,
                              pass_name=pass_name, error=str(exc))
        if isinstance(exc, TranslationValidationError) and flag:
            safe = dataclasses.replace(options, **{flag: False})
        else:
            safe = dataclasses.replace(
                options, opt_gvn=False, opt_licm=False,
                opt_scalar_replace=False, opt_range_guards=False,
                validate_passes=False, verify_deopt=False)
        return self._compile_unit(method, receiver, options=safe,
                                  name=name, recompile=recompile,
                                  entry_frames=entry_frames,
                                  diagnostics=diagnostics)

    def _emit(self, result, param_names, name, recompile, fuse=True,
              report=None, options=None, diagnostics=None):
        options = options or self.options
        if fuse:
            t0 = time.perf_counter()
            from repro.delite.fusion import fuse_delite
            fuse_delite(result.blocks, jit=self, diagnostics=diagnostics)
            if report is not None:
                report.phases["fusion"] = time.perf_counter() - t0
        # The PassManager owns all IR-level optimization (block fusion,
        # DCE, guard elimination) plus the verify/taint/alloc passes, per
        # the tier's declarative pass list; the backend runs with
        # optimize=False and never re-cleans the CFG itself.
        manager = PassManager(options, telemetry=self.telemetry,
                              diagnostics=diagnostics)
        manager.run(result, name, report=report)
        unit = CompilationUnit(result=result, name=name, jit=self,
                               recompile=recompile, report=report,
                               options=options)
        return get_backend("python").emit(unit)

    def _osr_execute(self, meta, lives):
        """``fastpath``: compile the captured continuation with the current
        values as compile-time constants, then run it (paper 3.2)."""
        leaf = reconstruct_frames(meta, lives)
        frames = []
        f = leaf
        while f is not None:
            frames.append(f)
            f = f.parent
        frames.reverse()
        self.telemetry.inc("osr.compiles")
        self.telemetry.record("osr.compile",
                              method=leaf.method.qualified_name,
                              bci=leaf.bci)
        try:
            compiled = self._compile_unit(
                leaf.method, receiver=None, name="osr@%s:%d"
                % (leaf.method.qualified_name, leaf.bci),
                entry_frames=frames)
        except CompilationError:
            # Recompilation failed; fall back to interpreting.
            leaf = reconstruct_frames(meta, lives)
            return self.vm.run_frames(leaf)
        return compiled()

    # -- JIT lint ----------------------------------------------------------------

    def analyze(self, target, method_name=None, options=None):
        """Run the IR analysis pipeline in *collect* mode ("JIT lint").

        ``target`` is either a class name (then ``method_name`` names a
        static method) or a guest closure ``Obj``. The unit is compiled
        with ``verify_ir`` on; instead of raising, taint leaks, residual
        allocations/deopt points, verifier errors, and compile warnings
        become findings on the returned
        :class:`~repro.analysis.diagnostics.Diagnostics`.
        """
        opts = dataclasses.replace(options or self.options,
                                   verify_ir=True, unit_cache=False,
                                   validate_passes=True, verify_deopt=True)
        if isinstance(target, Obj):
            method = target.cls.lookup_method("apply")
            if method is None:
                raise GuestTypeError("analyze(): %s has no apply method"
                                     % target.cls.name)
            receiver = target
            name = "%s.apply" % target.cls.name
        else:
            method = self.vm.linker.resolve_static(target, method_name)
            receiver = None
            name = method.qualified_name
        diag = Diagnostics(unit=name)
        try:
            self._compile_unit(method, receiver=receiver, options=opts,
                               name=name, diagnostics=diag)
        except CompilationError as exc:
            # Collect-mode analyses never raise; anything that still does
            # (freeze/unroll/inline failures, ...) becomes a finding too.
            diag.add("error", "compile", str(exc))
        return diag

    # -- aggregated statistics ---------------------------------------------------

    def stats(self):
        """Aggregate observability snapshot for this VM: compile counts and
        per-phase timings, cache traffic, speculation outcomes, and the
        per-unit :class:`~repro.observability.CompileReport` list."""
        m = self.telemetry.metrics
        compile_total = m.timing("compile.total")
        phases = {}
        for tname in list(m.timings()):
            if tname.startswith("compile.phase."):
                phases[tname[len("compile.phase."):]] = m.timing(tname)
        caches = {}
        for cname in ("unit_cache", "jit_cache"):
            probes = {
                "hits": m.get("cache.%s.hits" % cname),
                "misses": m.get("cache.%s.misses" % cname),
                "evictions": m.get("cache.%s.evictions" % cname),
            }
            if any(probes.values()):
                caches[cname] = probes
        tier_timings = {}
        for t in (1, 2, 3):
            timing = m.timing("compile.tier%d.total" % t)
            if timing:
                tier_timings[t] = timing
        # Per-tier compile-latency aggregates (count/total/min/max/mean),
        # the observable form of the baseline-vs-staged latency claim.
        # "baseline" overlaps tier 1: it is the subset of tier-1
        # compiles that took the template path.
        latency = {}
        for label, tname in (("tier1", "compile.tier1.total"),
                             ("tier2", "compile.tier2.total"),
                             ("trace", "compile.tier3.total"),
                             ("baseline", "compile.baseline.total")):
            timing = m.timing(tname)
            if timing:
                latency[label] = timing
        compiles_by_tier = {t: m.get("compiles.tier%d" % t) for t in (1, 2)}
        if m.get("compiles.tier3"):
            compiles_by_tier[3] = m.get("compiles.tier3")  # trace tier
        tiers = {
            "compiles_by_tier": compiles_by_tier,
            "promotions": m.get("tier.promotions"),
            "demotions": m.get("tier.demotions"),
            "blacklists": m.get("tier.blacklists"),
            "osr_tier_ups": m.get("tier.osr_up"),
            "timings": tier_timings,
            "latency": latency,
            "units": self.tiers.snapshot(),
        }
        if self.codecache is not None:
            codecache = self.codecache.stats()
        else:
            codecache = {"enabled": False,
                         "hits": m.get("codecache.hits"),
                         "misses": m.get("codecache.misses")}
        return {
            "compiles": m.get("compiles"),
            "compile_seconds": (compile_total or {}).get("total", 0.0),
            "compile_timing": compile_total,
            "phase_timings": phases,
            "cache_hits": m.get("cache.hits"),
            "cache_misses": m.get("cache.misses"),
            "cache_evictions": m.get("cache.evictions"),
            "caches": caches,
            "guards_installed": m.get("guards_installed"),
            "guard_failures": m.get("guard_failures"),
            "deopts": m.get("deopts"),
            "deopt_sites": m.get("deopt_sites"),
            "osr_compiles": m.get("osr.compiles"),
            "tiers": tiers,
            "traces": (self.tiers.traces.snapshot()
                       if self.tiers.traces is not None
                       else {"enabled": False}),
            "codecache": codecache,
            "compile_service": (self.compile_service.stats()
                                if self.compile_service is not None
                                else None),
            "server": (self.compile_server.stats()
                       if self.compile_server is not None
                       else None),
            "invalidations": m.get("invalidations"),
            "inlines": m.get("inlines"),
            "residual_calls": m.get("residual_calls"),
            "unroll_clones": m.get("unroll_clones"),
            "macro_expansions": m.get("macro.expansions"),
            "delite_kernels": m.get("delite.kernels"),
            "interp_invocations": m.get("interp.invocations"),
            "units": [name for name, _ in self.compile_log],
        }

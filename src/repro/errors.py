"""Exception hierarchy for the repro package.

The paper's central contract is that explicit JIT compilation may *fail
loudly* instead of silently producing slow code: "compilation might fail
with an exception if the argument of freeze cannot be evaluated during
compilation. We argue that this is OK, and even desirable."  Every demanded-
but-impossible optimization surfaces as a subclass of
:class:`CompilationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Guest-language toolchain errors
# ---------------------------------------------------------------------------

class MiniJSyntaxError(ReproError):
    """Raised by the MiniJ lexer/parser on malformed source."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        if line is not None:
            message = "line %d:%d: %s" % (line, col if col is not None else 0, message)
        super().__init__(message)


class MiniJCompileError(ReproError):
    """Raised by the MiniJ-to-bytecode compiler (e.g. assignment to a
    captured variable, unknown name)."""


class AssemblerError(ReproError):
    """Raised by the textual bytecode assembler."""


class VerifyError(ReproError):
    """Raised by the bytecode verifier (bad stack depth, jump target, ...)."""


class LinkError(ReproError):
    """Raised when class/method/field resolution fails."""


# ---------------------------------------------------------------------------
# Guest runtime errors
# ---------------------------------------------------------------------------

class GuestError(ReproError):
    """A runtime error inside guest (MiniJVM) code: null dereference,
    out-of-bounds array access, bad operand types, division by zero."""


class GuestNullError(GuestError):
    pass


class GuestIndexError(GuestError):
    pass


class GuestTypeError(GuestError):
    pass


class GuestArithmeticError(GuestError):
    pass


class GuestThrow(ReproError):
    """A guest-level THROW propagating through the host."""

    def __init__(self, value):
        self.value = value
        super().__init__("guest exception: %r" % (value,))


# ---------------------------------------------------------------------------
# JIT compilation errors (the paper's explicit-compilation contract)
# ---------------------------------------------------------------------------

class CompilationError(ReproError):
    """A demanded optimization could not be performed.

    Unlike a black-box JIT, Lancet reports failures to the program so it can
    react (paper section 1: "instead of running suboptimal code, we want to
    obtain a guarantee that certain optimizations are performed").
    """


class FreezeError(CompilationError):
    """``freeze(x)`` could not evaluate ``x`` at JIT-compile time."""


class MaterializeError(CompilationError):
    """``evalM`` failed to materialize a staged value back to a concrete
    one (the value is genuinely dynamic)."""


class UnrollError(CompilationError):
    """A loop demanded to be unrolled has a non-static trip count."""


class InlineError(CompilationError):
    """A call demanded to be inlined could not be (e.g. unknown target)."""


class NoAllocError(CompilationError):
    """``checkNoAlloc`` found a residual heap allocation, deoptimization
    point, or call to code not compiled under the directive (paper 3.3)."""

    def __init__(self, message, sites=()):
        super().__init__(message)
        self.sites = list(sites)


class TaintError(CompilationError):
    """The JIT taint analysis found tainted data flowing to a sink
    (paper 3.3, secure information flow)."""

    def __init__(self, message, leaks=()):
        super().__init__(message)
        self.leaks = list(leaks)


class MacroError(CompilationError):
    """A JIT macro raised or was misused."""


class IRVerifyError(CompilationError):
    """The IR well-formedness verifier found a malformed CFG (a compiler
    bug surfaced early, rather than as broken generated code)."""

    def __init__(self, message, errors=(), stage="staged"):
        super().__init__(message)
        self.errors = list(errors)
        self.stage = stage


class TranslationValidationError(CompilationError):
    """The per-pass translation validator found an optimization pass that
    does not simulate its input (a dropped/reordered effect, a
    strengthened guard, a diverging straight-line segment). The compile
    is rejected and retried with the offending pass disabled."""

    def __init__(self, message, pass_name="", findings=()):
        super().__init__(message)
        self.pass_name = pass_name
        self.findings = list(findings)


class DeoptStateError(CompilationError):
    """The deopt-state verifier found a side-exit whose recorded
    interpreter state is unsound: a live value undefined on some path, a
    live interpreter slot without a template, or a slot mapped to a
    pruned loop-header parameter (the PR 6 bug class)."""

    def __init__(self, message, pass_name="", findings=()):
        super().__init__(message)
        self.pass_name = pass_name
        self.findings = list(findings)


class ParallelSafetyError(CompilationError):
    """The parallel-safety re-checker found a fusion rewrite (or a
    demanded parallel execution) whose kernels are not proven safe —
    an internal inconsistency between the fusion preflight and the
    effect summaries, surfaced like a failed translation validation."""

    def __init__(self, message, findings=()):
        super().__init__(message)
        self.findings = list(findings)


class RaceDetected(ReproError):
    """The dynamic write sanitizer (``REPRO_PARSAFE=check``) observed two
    chunks of a parallel Delite execution writing overlapping locations —
    the runtime cross-check of a wrong ``ProvenParallel`` verdict."""

    def __init__(self, message, op_name="", overlaps=()):
        super().__init__(message)
        self.op_name = op_name
        self.overlaps = list(overlaps)


class CompilationWarningList(ReproError):
    """Container surfaced when compiling with ``warnings_as_errors``."""

    def __init__(self, warnings):
        self.warnings = list(warnings)
        super().__init__("; ".join(str(w) for w in warnings))

"""Op fusion over the staged IR (paper 3.4).

Rewrites chains of Delite statements inside compiled code:

* ``map(map(xs))`` — vertical fusion by kernel composition;
* ``sum(map(xs))`` / ``sum(zipmap(xs, ys))`` — DeliteOpMapReduce, removing
  the intermediate array;
* ``map(zipWithIndex(xs))`` — the AoS-to-SoA transformation: the map
  kernel is recompiled against a synthesized ``(element, index)`` closure,
  whose Pair allocation Lancet scalar-replaces — so the fused kernel never
  allocates pair objects at all (exactly the paper's name-score win).

Producers whose only consumer was fused away become dead and are removed
by the regular DCE pass (delite ops are functional).
"""

from __future__ import annotations

from repro.bytecode.builder import MethodBuilder
from repro.bytecode.classfile import ClassFile
from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import Sym


def fuse_delite(blocks, jit=None):
    """Fuse Delite stmt chains in-place; returns the number of fusions."""
    delite_stmts = {}
    for block in blocks.values():
        for stmt in block.stmts:
            if stmt.op == "delite":
                delite_stmts[stmt.sym.name] = stmt
    if not delite_stmts:
        return 0

    uses = _count_uses(blocks)
    fused = 0
    changed = True
    while changed:
        changed = False
        for block in blocks.values():
            for stmt in block.stmts:
                if stmt.op != "delite":
                    continue
                if _try_fuse(stmt, delite_stmts, uses, jit):
                    uses = _count_uses(blocks)
                    fused += 1
                    changed = True
    return fused


def _count_uses(blocks):
    uses = {}

    def use(rep):
        if isinstance(rep, Sym):
            uses[rep.name] = uses.get(rep.name, 0) + 1

    for block in blocks.values():
        for stmt in block.stmts:
            for a in stmt.args:
                use(a)
        term = block.terminator
        if isinstance(term, Jump):
            for __, rep in term.phi_assigns:
                use(rep)
        elif isinstance(term, Branch):
            use(term.cond)
            for __, rep in term.true_assigns + term.false_assigns:
                use(rep)
        elif isinstance(term, Return):
            use(term.value)
        elif isinstance(term, (Deopt, OsrCompile)):
            for rep in term.lives:
                use(rep)
    return uses


def _producer_of(rep, delite_stmts, uses):
    if not isinstance(rep, Sym):
        return None
    if uses.get(rep.name, 0) != 1:
        return None      # intermediate observed elsewhere: keep it
    return delite_stmts.get(rep.name)


def _try_fuse(stmt, delite_stmts, uses, jit):
    from repro.delite.ops import (MapIndexedOp, MapOp, MapReduceOp,
                                  ReduceOp, ZipMapOp, ZipWithIndexOp)
    op = stmt.args[0]

    if isinstance(op, MapOp):
        producer = _producer_of(stmt.args[1], delite_stmts, uses)
        if producer is None:
            return False
        pop = producer.args[0]
        if isinstance(pop, MapOp):
            fused = MapOp(pop.kernel.compose(op.kernel))
            stmt.args = (fused,) + tuple(producer.args[1:])
            return True
        if isinstance(pop, ZipWithIndexOp) and jit is not None:
            indexed = _indexify_kernel(jit, op.kernel)
            if indexed is not None:
                stmt.args = (MapIndexedOp(indexed),) + tuple(producer.args[1:])
                return True
        return False

    if isinstance(op, ReduceOp) and op.kernel is None:
        producer = _producer_of(stmt.args[1], delite_stmts, uses)
        if producer is None:
            return False
        pop = producer.args[0]
        if isinstance(pop, MapOp):
            stmt.args = (MapReduceOp(pop.kernel, n_elem=1),) \
                + tuple(producer.args[1:])
            return True
        if isinstance(pop, ZipMapOp):
            stmt.args = (MapReduceOp(pop.kernel, n_elem=2),) \
                + tuple(producer.args[1:])
            return True
        if isinstance(pop, MapIndexedOp):
            stmt.args = (MapReduceOp(pop.kernel, n_elem=1, indexed=True),) \
                + tuple(producer.args[1:])
            return True
    return False


_SYNTH_COUNT = [0]


def _indexify_kernel(jit, pair_kernel):
    """Recompile a Pair-taking kernel as a two-argument (value, index)
    kernel. The synthesized wrapper allocates the Pair, and Lancet's
    scalar replacement removes it — this is the SoA conversion."""
    from repro.bytecode.opcodes import Op
    from repro.delite.kernels import Kernel
    from repro.runtime.objects import new_instance

    closure = getattr(pair_kernel, "guest_closure", None)
    if closure is None or "Pair" not in jit.vm.linker.classes:
        return None
    _SYNTH_COUNT[0] += 1
    name = "Delite$SoA%d" % _SYNTH_COUNT[0]
    cf = ClassFile(name, is_closure=True)
    cf.add_field("f", is_val=True)
    b = MethodBuilder("apply", 2, is_static=False)
    # return this.f.apply(new Pair(x, i))
    b.load(0).getfield("f")
    b.new("Pair").emit(Op.DUP).load(1).load(2).invoke("init", 2)
    b.emit(Op.POP)
    b.invoke("apply", 1)
    b.ret_val()
    cf.add_method(b.build())
    jit.vm.load_classes([cf])
    wrapper = new_instance(jit.vm.linker.resolve_class(name))
    wrapper.fields["f"] = closure
    kernel = Kernel.from_closure(jit, wrapper, name="soa:%s"
                                 % pair_kernel.name)
    return kernel

"""Guest (MiniJ) applications from the paper, plus loaders.

Each ``.mj`` file is a MiniJ port of code the paper shows or evaluates:

* ``csv.mj`` — Fig. 1/3: the CSV-processing library with explicit JIT calls
* ``safeint.mj`` — section 3.2: overflow-safe integers via slowpath
* ``stabletree.mj`` — section 3.2: search trees over stable structure
* ``reactive.mj`` — section 3.2: observer networks over stable wiring
* ``namescore.mj`` — section 3.4: the name-score file-processing program
* ``kmeans.mj`` / ``logreg.mj`` — section 3.4: the OptiML applications
* ``std.mj`` — guest collections (ArrayList/HashMap/StringBuilder) and the
  guest-side ``CalcJIT`` code cache of section 3.1
"""

from __future__ import annotations

import os

_HERE = os.path.dirname(__file__)


def app_source(name):
    """Read the MiniJ source of a bundled app (e.g. ``"csv"``)."""
    with open(os.path.join(_HERE, name + ".mj")) as f:
        return f.read()


def load_app(jit, name, module=None):
    """Load a bundled app into a Lancet instance."""
    return jit.load(app_source(name), module=module or name.capitalize())

"""CFG helpers shared by the IR analysis passes.

The staged IR (:mod:`repro.lms.ir`) is a dict of ``{block_id: Block}``
whose edges live in the terminators. These helpers expose the graph shape
(successors, predecessors, reachability, reverse postorder) and the
def/use structure of statements and terminators, so the dataflow passes
never pattern-match terminator classes themselves.
"""

from __future__ import annotations

from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import Sym


def successors(block):
    """Successor block ids of ``block`` (empty for exits)."""
    return list(block.terminator.successors())


def predecessors(blocks):
    """``{block_id: [pred_id, ...]}`` for every block (exits included)."""
    preds = {bid: [] for bid in blocks}
    for bid, block in blocks.items():
        for succ in block.terminator.successors():
            if succ in preds:
                preds[succ].append(bid)
    return preds


def reachable_from(blocks, entry_id):
    """Set of block ids reachable from ``entry_id``."""
    seen = set()
    work = [entry_id]
    while work:
        bid = work.pop()
        if bid in seen or bid not in blocks:
            continue
        seen.add(bid)
        work.extend(blocks[bid].terminator.successors())
    return seen


def reverse_postorder(blocks, entry_id):
    """Block ids in reverse postorder from ``entry_id`` (a good iteration
    order for forward dataflow problems)."""
    order = []
    seen = set()

    def visit(bid):
        # Iterative DFS: (block id, iterator over its successors).
        stack = [(bid, iter(blocks[bid].terminator.successors()))]
        seen.add(bid)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ in blocks and succ not in seen:
                    seen.add(succ)
                    stack.append(
                        (succ, iter(blocks[succ].terminator.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if entry_id in blocks:
        visit(entry_id)
    order.reverse()
    return order


def dominators(blocks, entry_id):
    """Immediate dominators as ``{block_id: idom_id}`` (the entry maps to
    itself; unreachable blocks are absent).

    Cooper/Harvey/Kennedy's iterative algorithm over reverse postorder:
    two-finger intersection walks idom chains by RPO index, so the whole
    thing is a couple of sweeps for the CFGs staging produces.
    """
    order = reverse_postorder(blocks, entry_id)
    index = {bid: i for i, bid in enumerate(order)}
    preds = predecessors(blocks)
    idom = {entry_id: entry_id}

    def intersect(a, b):
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == entry_id:
                continue
            new_idom = None
            for p in preds[bid]:
                if p in idom:
                    new_idom = p if new_idom is None \
                        else intersect(p, new_idom)
            if new_idom is not None and idom.get(bid) != new_idom:
                idom[bid] = new_idom
                changed = True
    return idom


def dominates(idom, a, b):
    """True when block ``a`` dominates block ``b`` under ``idom`` (as
    returned by :func:`dominators`); reflexive."""
    while True:
        if a == b:
            return True
        parent = idom.get(b)
        if parent is None or parent == b:
            return False
        b = parent


def def_counts(blocks):
    """Global ``{name: definition count}`` over statements and block
    params. The staged IR is block-argument SSA, so every count should be
    1 — passes that substitute names check this rather than assume it."""
    counts = {}
    for block in blocks.values():
        for name in block.params:
            counts[name] = counts.get(name, 0) + 1
        for stmt in block.stmts:
            counts[stmt.sym.name] = counts.get(stmt.sym.name, 0) + 1
    return counts


def stmt_uses(stmt):
    """Sym names read by one statement."""
    return [a.name for a in stmt.args if isinstance(a, Sym)]


def term_uses(term):
    """Sym names read by a terminator (branch condition, phi-assign
    values, return value, deopt live sets)."""
    names = []

    def use(rep):
        if isinstance(rep, Sym):
            names.append(rep.name)

    if isinstance(term, Jump):
        for __, rep in term.phi_assigns:
            use(rep)
    elif isinstance(term, Branch):
        use(term.cond)
        for __, rep in term.true_assigns:
            use(rep)
        for __, rep in term.false_assigns:
            use(rep)
    elif isinstance(term, Return):
        use(term.value)
    elif isinstance(term, (Deopt, OsrCompile)):
        for rep in term.lives:
            use(rep)
    return names


def phi_assigns_for_edge(term, succ_id):
    """The ``[(param_name, rep)]`` list a terminator passes along the edge
    to ``succ_id`` (empty for terminators without assigns)."""
    if isinstance(term, Jump) and term.target == succ_id:
        return term.phi_assigns
    if isinstance(term, Branch):
        assigns = []
        # Both arms may target the same successor; concatenate.
        if term.true_target == succ_id:
            assigns.extend(term.true_assigns)
        if term.false_target == succ_id:
            assigns.extend(term.false_assigns)
        return assigns
    return []


def count_uses(blocks):
    """Global ``{sym name: use count}`` over statements and terminators."""
    uses = {}
    for block in blocks.values():
        for stmt in block.stmts:
            for name in stmt_uses(stmt):
                uses[name] = uses.get(name, 0) + 1
        for name in term_uses(block.terminator):
            uses[name] = uses.get(name, 0) + 1
    return uses

"""Structured JIT observability: event tracing, metrics, compile reports.

The paper's promise is *surgical control* over JIT behaviour; this package
makes that behaviour observable, so tests and benchmarks can assert on
what the compiler did (inlined, guarded, deoptimized, cached) rather than
only on end results.

One :class:`Telemetry` object is owned by each :class:`~repro.jit.api.Lancet`
and threaded through the pipeline (interpreter, staged interpreter, code
caches, macro registry, Delite runtime). It bundles:

* an :class:`EventTrace` — a bounded ring buffer of typed events with
  JSONL export, **disabled by default** (recording is a flag test when off);
* a :class:`Metrics` registry — always-on counters and timing summaries,
  touched only at rare pipeline events (never in generated code or the
  interpreter dispatch loop);
* per-unit :class:`CompileReport` objects attached to every compiled
  function and aggregated by ``Lancet.stats()``.

Event kinds emitted by the built-in instrumentation::

    compile.start / compile.phase / compile.end
    inline.decision          (action: inline | residual, policy)
    unroll.clone             (polyvariant loop-header cloning)
    guard.install            (speculation guards: kind, reason)
    deopt.site               (slowpath / fastpath sites)
    deopt                    (a runtime guard failure / OSR-out)
    osr.compile              (fastpath continuation recompilation)
    invalidate               (stable-field / manual invalidation)
    cache.hit / cache.miss / cache.evict / cache.flush
    macro.expand
    delite.launch
    parsafe.verdict          (one parallel-safety verdict per Delite op:
                             status, deciding checker, blame provenance)
    parsafe.fallback         (unproven op demoted from smp/gpu to seq;
                             counter ``parsafe.fallbacks``)
    parsafe.race             (write sanitizer found overlapping chunk
                             footprints; counters ``parsafe.checks`` /
                             ``parsafe.races``)
    fusion.reject            (fusion rewrite refused by the legality
                             checker: kind, checker, kernels; counter
                             ``fusion.rejects``)
    fusion.recheck_fail      (a performed rewrite failed the post-hoc
                             legality re-check)
    analysis.report          (per-unit IR analysis summary)
    analysis.verify_fail     (IR verifier found a malformed CFG)
    pass.run                 (one PassManager pass: timing, CFG deltas)
    tier.promote / tier.demote   (tier-ladder transitions, with tiers)
    osr.tier_up              (hot loop back-edge tiered up mid-execution)
    codecache.hit / codecache.miss   (persistent-cache warm/cold lookups)
    codecache.store / codecache.skip (entry persisted / unpersistable)
    codecache.quarantine     (corrupt on-disk entry sidelined, clean miss)
    codecache.evict / codecache.invalidate  (size-budget LRU, stale code)
    compileq.submit / compileq.done / compileq.shed / compileq.retry
    compileq.fail / compileq.timeout / compileq.blacklist
                             (asynchronous CompileService lifecycle; the
                             queue depth is the ``compileq.depth`` gauge)
    server.attach            (a Lancet VM became a tenant)
    server.submit / server.done / server.fail
                             (multi-tenant CompileServer lifecycle; the
                             queue depth is the ``server.queue_depth``
                             gauge, and ``stats()["server"]`` includes
                             the dedup ratio)
    server.dedup / server.dedup_wait
                             (cross-VM dedup: a queued follower joined
                             a leader / a synchronous tenant waited on
                             another tenant's in-flight compile)
    server.inherit           (priority inheritance: an urgent follower
                             raised a queued leader's priority)
    server.shed / server.reject  (admission control: backpressure drop,
                             queue-full or per-tenant-cap refusal)
    server.batch             (a worker took several consecutive requests
                             from one tenant in a single turn)
    server.warm              (manifest prewarming replayed into the store)
    server.close
    codecache.hits.<kind> / codecache.misses.<kind>
                             (per-kind warm-start attribution counters,
                             kind in unit | baseline | trace; surfaced
                             as ``stats()["codecache"]["by_kind"]``)
"""

from __future__ import annotations

from repro.observability.events import Event, EventTrace, load_jsonl
from repro.observability.metrics import Metrics
from repro.observability.report import CompileReport


class Telemetry:
    """The per-VM observability hub: an event trace plus a metrics registry.

    Tracing is off by default; counters are always on (they only fire at
    compile/deopt/cache-probe granularity). ``record``/``inc``/``observe``
    are the three entry points instrumentation calls.
    """

    def __init__(self, trace_capacity=4096, trace_enabled=False):
        self.trace = EventTrace(capacity=trace_capacity,
                                enabled=trace_enabled)
        self.metrics = Metrics()

    # -- trace switch ----------------------------------------------------------

    @property
    def enabled(self):
        """Whether event *tracing* is on (counters are always on)."""
        return self.trace.enabled

    def enable_trace(self):
        self.trace.enabled = True
        return self

    def disable_trace(self):
        self.trace.enabled = False
        return self

    # -- recording -------------------------------------------------------------

    def record(self, kind, /, **data):
        """Record a trace event (no-op unless tracing is enabled)."""
        if not self.trace.enabled:
            return None
        return self.trace.record(kind, **data)

    def inc(self, name, n=1):
        self.metrics.inc(name, n)

    def observe(self, name, seconds):
        self.metrics.observe(name, seconds)

    def set_gauge(self, name, value):
        self.metrics.set_gauge(name, value)

    # -- convenience -----------------------------------------------------------

    def events(self, kind=None):
        return self.trace.events(kind)

    def export_jsonl(self, path_or_file):
        return self.trace.export_jsonl(path_or_file)

    def reset(self):
        self.trace.clear()
        self.metrics.reset()


__all__ = ["Telemetry", "Event", "EventTrace", "Metrics", "CompileReport",
           "load_jsonl"]

"""A miniature database substrate for the SQL cross-compilation demo.

Stores tables as lists of row dicts, executes the query plans produced by
:mod:`repro.backends.sql`, and keeps a *query log* so tests can observe the
paper's "query avalanche" effect (one round-trip per loop iteration) and
its avoidance (a single grouped query).
"""

from __future__ import annotations

from collections import defaultdict


class MiniDB:
    def __init__(self):
        self.tables = {}
        self.query_log = []        # SQL text of every executed query

    def create_table(self, name, rows):
        self.tables[name] = [dict(r) for r in rows]

    # -- plan execution (called by Query) ------------------------------------

    def execute_scan(self, sql, table, predicate):
        """Run a filter scan; logs the round-trip."""
        self.query_log.append(sql)
        rows = self.tables[table]
        if predicate is None:
            return list(rows)
        return [r for r in rows if predicate(r)]

    def execute_scalar(self, sql, value_fn):
        self.query_log.append(sql)
        return value_fn()

    def execute_group_by(self, sql, table, key_col, predicate=None):
        """One round-trip building an index (avalanche avoidance)."""
        self.query_log.append(sql)
        index = defaultdict(list)
        for r in self.tables[table]:
            if predicate is None or predicate(r):
                index[r[key_col]].append(r)
        return dict(index)

    def trips(self):
        return len(self.query_log)

    def reset_log(self):
        self.query_log = []

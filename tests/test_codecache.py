"""The persistent code cache and asynchronous CompileService.

In-process tests cover the on-disk store (round trips, fingerprint
sensitivity, corruption quarantine, budget eviction, invalidation) and
the CompileService queue semantics (priorities, dedup, backpressure,
retry, blacklist, timeout). Subprocess tests prove the headline claim:
a warm start runs the same program with **zero** compiles and
byte-identical generated code.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.codecache import (PRIORITY_OSR, PRIORITY_PREFETCH,
                             PRIORITY_TIER1, PRIORITY_TIER2,
                             CompileService, FORMAT_VERSION,
                             PersistentCodeCache)
from repro.compiler.options import CompileOptions
from repro.errors import CompilationError
from repro.observability import Telemetry
from tests.conftest import load

@pytest.fixture(autouse=True)
def _allow_persistence(monkeypatch):
    """These tests exercise persistence itself (in isolated tmp dirs);
    CI's REPRO_NO_PERSIST blanket run must not turn them into no-ops."""
    monkeypatch.delenv("REPRO_NO_PERSIST", raising=False)


SRC = '''
    def addmul(x) {
      var acc = 7;
      var i = 0;
      while (i < 3) { acc = acc + x; i = i + 1; }
      return acc;
    }
    def other(x) { return x - 1; }
'''


def load_cached(tmp_path, source=SRC, **opt_kw):
    opts = CompileOptions(cache_dir=str(tmp_path / "cc"), **opt_kw)
    return load(source, options=opts)


def entry_files(cache_dir):
    return sorted(p for p in os.listdir(cache_dir) if p.endswith(".json"))


class TestPersistentStore:
    def test_cold_store_then_warm_load(self, tmp_path):
        j1 = load_cached(tmp_path)
        f1 = j1.compile_function("Main", "addmul")
        assert f1(5) == 22
        s1 = j1.stats()
        assert s1["compiles"] == 1
        assert s1["codecache"]["stores"] == 1
        assert s1["codecache"]["misses"] == 1

        # A second VM over the same cache dir: zero compiles, same code.
        j2 = load_cached(tmp_path)
        f2 = j2.compile_function("Main", "addmul")
        assert f2(5) == 22
        s2 = j2.stats()
        assert s2["compiles"] == 0
        assert s2["codecache"]["hits"] == 1
        assert f2.source == f1.source
        assert f2.persist_key == f1.persist_key

    def test_warm_unit_still_deopts_and_recompiles(self, tmp_path):
        src = '''
            def clamp(x) {
              if (Lancet.speculate(x < 100)) { return x; }
              return 100;
            }
        '''
        j1 = load_cached(tmp_path, source=src)
        assert j1.compile_function("Main", "clamp")(5) == 5
        j2 = load_cached(tmp_path, source=src)
        f = j2.compile_function("Main", "clamp")
        assert j2.stats()["compiles"] == 0        # warm
        assert f(500) == 100                      # guard fails -> interpreter
        assert f.deopt_count == 1

    def test_fingerprint_tracks_bytecode(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        changed = SRC.replace("acc = 7", "acc = 8")
        j2 = load_cached(tmp_path, source=changed)
        f = j2.compile_function("Main", "addmul")
        assert f(5) == 23
        s2 = j2.stats()
        assert s2["compiles"] == 1                 # miss: source changed
        assert s2["codecache"]["hits"] == 0

    def test_fingerprint_tracks_codegen_options(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        j2 = load_cached(tmp_path, inline_policy="never")
        j2.compile_function("Main", "addmul")
        assert j2.stats()["compiles"] == 1         # options in the key

    def test_fingerprint_ignores_non_codegen_options(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        # cache_budget_bytes / compile_workers don't affect generated
        # code, so they must not force a cold start.
        j2 = load_cached(tmp_path, cache_budget_bytes=32 << 20)
        j2.compile_function("Main", "addmul")
        assert j2.stats()["compiles"] == 0
        j2.close()

    def test_fingerprint_tracks_macro_registry(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        j2 = load_cached(tmp_path)
        # An extra installed macro changes staging semantics: the old
        # entry must not be trusted even though the bytecode matches.
        j2.macros.install("Whatever", "m", lambda ctx, recv, args: None)
        j2.compile_function("Main", "addmul")
        assert j2.stats()["compiles"] == 1

    def test_corrupt_entry_quarantined_and_recompiled(self, tmp_path):
        j1 = load_cached(tmp_path)
        f1 = j1.compile_function("Main", "addmul")
        cache_dir = j1.codecache.root
        (name,) = entry_files(cache_dir)
        path = os.path.join(cache_dir, name)
        with open(path, "r+") as f:
            f.truncate(30)                         # torn write / bad disk

        j2 = load_cached(tmp_path)
        j2.telemetry.enable_trace()
        f2 = j2.compile_function("Main", "addmul")
        assert f2(5) == f1(5)
        s2 = j2.stats()
        assert s2["compiles"] == 1                 # clean miss, recompiled
        assert s2["codecache"]["quarantines"] == 1
        events = j2.telemetry.events("codecache.quarantine")
        assert len(events) == 1
        assert name in events[0].data["path"]
        # The corpse is sidelined for autopsy, and the fresh store wrote
        # a good entry under the real name again.
        assert os.path.exists(path + ".quarantine")
        assert entry_files(cache_dir) == [name]

    def test_checksum_mismatch_quarantined(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        cache_dir = j1.codecache.root
        (name,) = entry_files(cache_dir)
        path = os.path.join(cache_dir, name)
        with open(path) as f:
            wrapper = json.load(f)
        wrapper["payload"]["source"] += "\n# tampered"
        with open(path, "w") as f:
            json.dump(wrapper, f)

        j2 = load_cached(tmp_path)
        j2.compile_function("Main", "addmul")
        s2 = j2.stats()
        assert s2["compiles"] == 1
        assert s2["codecache"]["quarantines"] == 1

    def test_format_version_mismatch_is_clean_miss(self, tmp_path):
        j1 = load_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        cache_dir = j1.codecache.root
        (name,) = entry_files(cache_dir)
        path = os.path.join(cache_dir, name)
        with open(path) as f:
            wrapper = json.load(f)
        wrapper["format"] = FORMAT_VERSION + 1
        with open(path, "w") as f:
            json.dump(wrapper, f)

        j2 = load_cached(tmp_path)
        j2.compile_function("Main", "addmul")
        s2 = j2.stats()
        assert s2["compiles"] == 1
        assert s2["codecache"]["version_misses"] == 1
        assert s2["codecache"]["quarantines"] == 0  # not corruption
        assert not os.path.exists(path + ".quarantine")

    def test_budget_eviction_drops_oldest(self, tmp_path):
        j = load_cached(tmp_path)
        j.compile_function("Main", "addmul")
        j.compile_function("Main", "other")
        cache = j.codecache
        names = entry_files(cache.root)
        assert len(names) == 2
        # Age the addmul entry, shrink the budget to one entry, enforce.
        sizes = {n: os.path.getsize(os.path.join(cache.root, n))
                 for n in names}
        old = time.time() - 1000
        victim = names[0]
        os.utime(os.path.join(cache.root, victim), (old, old))
        cache.budget_bytes = max(s for s in sizes.values())
        cache._enforce_budget()
        survivors = entry_files(cache.root)
        assert victim not in survivors
        assert len(survivors) >= 1
        assert j.stats()["codecache"]["evicts"] >= 1

    def test_invalidation_reaches_disk(self, tmp_path):
        j = load_cached(tmp_path)
        f = j.compile_function("Main", "addmul")
        assert f.persist_key is not None
        assert len(entry_files(j.codecache.root)) == 1
        # The runtime invalidation path (a stable guard failing calls
        # exactly this): the on-disk entry bakes in the dead snapshot
        # and must die with the in-memory code.
        f.invalidate("stable guard failed (stable)")
        assert entry_files(j.codecache.root) == []
        assert f.persist_key is None
        assert j.stats()["codecache"]["invalidates"] == 1
        # Recompile works and re-persists on the next cached compile.
        assert f(5) == 22

    def test_no_persist_option_disables(self, tmp_path):
        j = load_cached(tmp_path, persist=False)
        j.compile_function("Main", "addmul")
        assert j.codecache is None
        assert j.stats()["codecache"]["enabled"] is False

    def test_no_persist_env_var_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PERSIST", "1")
        j = load_cached(tmp_path)
        j.compile_function("Main", "addmul")
        assert j.codecache is None

    def test_unwritable_cache_dir_degrades(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        opts = CompileOptions(cache_dir=str(blocker / "sub"))
        j = load(SRC, options=opts)
        f = j.compile_function("Main", "addmul")   # must not raise
        assert f(5) == 22
        assert j.codecache is None or not j.codecache.enabled

    def test_disabled_store_is_inert(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        cache = PersistentCodeCache(str(blocker / "nope"))
        assert cache.enabled is False
        assert cache.load("deadbeef", None) is None
        assert cache.store("deadbeef", None, None) is False
        assert cache.invalidate("deadbeef") is False

    def test_receiver_specialized_units_never_persist(self, tmp_path):
        src = '''
            class Box {
              val k;
              def init(k) { this.k = k; }
              def scale(z) { return this.k * z; }
            }
            def make(k) { return new Box(k); }
        '''
        j = load_cached(tmp_path, source=src)
        box = j.vm.call("Main", "make", [6])
        f = j.compile_method("Box", "scale", box)
        assert f(7) == 42
        # Identity-bound to this heap: nothing may hit the disk.
        assert entry_files(j.codecache.root) == []


def load_baseline_cached(tmp_path, source=SRC):
    """Fresh Lancet whose default options route compiles through the
    baseline Tier-1 path, persisting into ``tmp_path``."""
    from repro.pipeline import TIER1, tier_options
    opts = tier_options(CompileOptions(cache_dir=str(tmp_path / "cc")),
                        TIER1)
    return load(source, options=opts)


def _rewrap(path, mutate):
    """Edit a stored entry's payload and re-sign it, so the checksum
    still verifies and the corruption is only visible to rehydration."""
    from repro.codecache.store import _checksum
    with open(path) as f:
        wrapper = json.load(f)
    mutate(wrapper["payload"])
    wrapper["sha256"] = _checksum(wrapper["payload"])
    with open(path, "w") as f:
        json.dump(wrapper, f)


@pytest.mark.skipif(
    "not __import__('repro.baseline', fromlist=['x']).baseline_supported()",
    reason="baseline templates target CPython 3.11")
class TestBaselinePersistence:
    """Baseline units persist a *marshaled code object*, not source
    (ISSUE 8): round trips must skip translate/assemble entirely, and a
    corrupt code payload must quarantine, never crash or miscompute."""

    def test_round_trip_skips_compile(self, tmp_path):
        j1 = load_baseline_cached(tmp_path)
        f1 = j1.compile_function("Main", "addmul")
        assert f1.kind == "baseline"
        assert f1(5) == 22
        assert j1.stats()["codecache"]["stores"] == 1

        j2 = load_baseline_cached(tmp_path)
        f2 = j2.compile_function("Main", "addmul")
        assert f2.kind == "baseline"
        assert f2(5) == 22
        s2 = j2.stats()
        assert s2["compiles"] == 0
        assert s2["codecache"]["hits"] == 1
        assert f2.persist_key == f1.persist_key
        # The rehydrated unit is the same marshaled code object.
        assert f2.code_object.co_code == f1.code_object.co_code

    def test_corrupt_marshal_quarantined_and_recompiled(self, tmp_path):
        j1 = load_baseline_cached(tmp_path)
        f1 = j1.compile_function("Main", "addmul")
        (name,) = entry_files(j1.codecache.root)
        path = os.path.join(j1.codecache.root, name)

        def clobber(payload):
            assert payload["kind"] == "baseline"
            payload["code"] = "AAAA" + payload["code"][4:]
        _rewrap(path, clobber)

        j2 = load_baseline_cached(tmp_path)
        f2 = j2.compile_function("Main", "addmul")
        assert f2(5) == f1(5)
        s2 = j2.stats()
        assert s2["compiles"] == 1                 # clean miss, recompiled
        assert s2["codecache"]["quarantines"] == 1
        assert os.path.exists(path + ".quarantine")

    def test_magic_mismatch_is_clean_miss(self, tmp_path):
        """An entry marshaled by a different CPython reads as a miss —
        no quarantine (the file may belong to another interpreter
        sharing the directory), no marshal.loads of foreign bytes."""
        j1 = load_baseline_cached(tmp_path)
        j1.compile_function("Main", "addmul")
        (name,) = entry_files(j1.codecache.root)
        path = os.path.join(j1.codecache.root, name)
        _rewrap(path, lambda p: p.__setitem__("magic", "deadbeef"))

        j2 = load_baseline_cached(tmp_path)
        f2 = j2.compile_function("Main", "addmul")
        assert f2(5) == 22
        s2 = j2.stats()
        assert s2["compiles"] == 1
        assert s2["codecache"]["quarantines"] == 0
        assert s2["codecache"]["misses"] == 1
        assert not os.path.exists(path + ".quarantine")

    def test_baseline_and_staged_entries_coexist(self, tmp_path):
        """The fingerprint ``kind`` separates the two representations:
        the same method compiled baseline and staged occupies two cache
        entries, and each warm start hits its own."""
        import dataclasses
        j = load_baseline_cached(tmp_path)
        quick = j.compile_function("Main", "addmul")
        assert quick.kind == "baseline"
        staged_opts = dataclasses.replace(j.options, baseline=False)
        staged = j.compile_function("Main", "addmul", options=staged_opts)
        assert getattr(staged, "kind", None) != "baseline"
        assert staged(5) == quick(5) == 22
        assert len(entry_files(j.codecache.root)) == 2


class TestCompileService:
    def _gated_service(self, **kw):
        """A 1-worker service whose first job blocks on a gate, so tests
        can fill the queue deterministically behind it."""
        svc = CompileService(workers=1, **kw)
        gate = threading.Event()
        started = threading.Event()

        def plug():
            started.set()
            gate.wait(5.0)
            return "plug"

        req = svc.submit("plug", plug, priority=PRIORITY_OSR)
        assert started.wait(5.0)
        return svc, gate, req

    def test_priority_order(self):
        svc, gate, _plug = self._gated_service()
        try:
            order = []
            reqs = [svc.submit(key, lambda k=key: order.append(k) or k,
                               priority=prio)
                    for key, prio in (("pf", PRIORITY_PREFETCH),
                                      ("t1", PRIORITY_TIER1),
                                      ("osr", PRIORITY_OSR),
                                      ("t2", PRIORITY_TIER2))]
            gate.set()
            for r in reqs:
                r.wait(5.0)
            assert order == ["osr", "t2", "t1", "pf"]
        finally:
            gate.set()
            svc.close()

    def test_inflight_dedup(self):
        svc, gate, _plug = self._gated_service()
        try:
            a = svc.submit("k", lambda: "va")
            b = svc.submit("k", lambda: "vb")
            assert a is b                      # one compile, shared handle
            gate.set()
            assert a.wait(5.0) == "va"
        finally:
            gate.set()
            svc.close()

    def test_backpressure_sheds_lowest_priority(self):
        svc, gate, _plug = self._gated_service(queue_limit=2)
        try:
            pf = svc.submit("pf", lambda: "pf", priority=PRIORITY_PREFETCH)
            t1 = svc.submit("t1", lambda: "t1", priority=PRIORITY_TIER1)
            # Queue full; an urgent request sheds the prefetch.
            osr = svc.submit("osr", lambda: "osr", priority=PRIORITY_OSR)
            assert not osr.rejected
            assert pf.state == "failed"
            assert "shed" in pf.error
            # Another prefetch has nothing less urgent to shed: rejected.
            pf2 = svc.submit("pf2", lambda: "x",
                             priority=PRIORITY_PREFETCH)
            assert pf2.rejected
            gate.set()
            assert osr.wait(5.0) == "osr"
            assert t1.wait(5.0) == "t1"
            assert svc.stats()["shed"] == 1
            assert svc.stats()["rejected"] == 1
        finally:
            gate.set()
            svc.close()

    def test_shed_notifies_on_error_and_emits_event(self):
        """A request dropped under backpressure must hear about it: its
        on_error callback fires (a tier promotion that is never notified
        stays pending forever) and compileq.shed is recorded."""
        tel = Telemetry()
        tel.enable_trace()
        svc, gate, _plug = self._gated_service(queue_limit=1,
                                               telemetry=tel)
        try:
            errors = []
            pf = svc.submit("pf", lambda: "pf", priority=PRIORITY_PREFETCH,
                            on_error=errors.append)
            osr = svc.submit("osr", lambda: "osr", priority=PRIORITY_OSR)
            assert not osr.rejected
            assert pf.state == "failed"
            assert errors == ["shed under backpressure"]
            shed_events = tel.events("compileq.shed")
            assert len(shed_events) == 1
            assert shed_events[0].data["key"] == repr("pf")
            assert tel.metrics.get("compileq.shed") == 1
        finally:
            gate.set()
            svc.close()

    def test_shed_on_error_fires_exactly_once(self):
        """The shed path and the generic failure path share the same
        notifier; a victim's callback must not double-fire."""
        svc, gate, _plug = self._gated_service(queue_limit=1)
        try:
            errors = []
            svc.submit("pf", lambda: "pf", priority=PRIORITY_PREFETCH,
                       on_error=errors.append)
            svc.submit("osr1", lambda: "a", priority=PRIORITY_OSR)
            svc.submit("osr2", lambda: "b", priority=PRIORITY_OSR)
            gate.set()
            time.sleep(0.05)
            assert errors == ["shed under backpressure"]
        finally:
            gate.set()
            svc.close()

    def test_transient_error_retries_then_succeeds(self):
        svc = CompileService(workers=1, retry_backoff=0.001)
        try:
            attempts = []

            def flaky():
                attempts.append(1)
                if len(attempts) < 3:
                    raise OSError("transient")
                return "ok"

            req = svc.submit("k", flaky)
            assert req.wait(5.0) == "ok"
            assert len(attempts) == 3
            assert svc.stats()["retries"] == 2
        finally:
            svc.close()

    def test_compilation_error_fails_immediately(self):
        svc = CompileService(workers=1, retry_backoff=0.001)
        try:
            attempts = []

            def broken():
                attempts.append(1)
                raise CompilationError("bad unit")

            req = svc.submit("k", broken)
            assert req.wait(5.0) is None
            assert req.state == "failed"
            assert len(attempts) == 1          # permanent: no retries
        finally:
            svc.close()

    def test_blacklist_after_repeated_failure(self):
        svc = CompileService(workers=1, blacklist_after=2,
                             retry_backoff=0.001)
        try:
            def broken():
                raise CompilationError("poisoned")

            for _ in range(2):
                svc.submit("k", broken).wait(5.0)
            req = svc.submit("k", broken)
            assert req.rejected
            assert req.error == "blacklisted"
            assert svc.stats()["blacklisted"] == [repr("k")]
            # forgive() clears the record; the key runs again.
            svc.forgive("k")
            ok = svc.submit("k", lambda: "fixed")
            assert ok.wait(5.0) == "fixed"
        finally:
            svc.close()

    def test_timeout_in_queue(self):
        svc, gate, _plug = self._gated_service()
        try:
            req = svc.submit("slowpoke", lambda: "late", timeout=0.01)
            time.sleep(0.05)
            gate.set()
            req._event.wait(5.0)
            assert req.state == "failed"
            assert req.wait(0) is None
            assert svc.stats()["timeouts"] == 1
        finally:
            gate.set()
            svc.close()

    def test_cancel_discards_result(self):
        svc, gate, req = self._gated_service()
        try:
            done = []
            req.on_complete = done.append
            svc.cancel("plug")
            gate.set()
            time.sleep(0.05)
            assert req.state == "cancelled"
            assert done == []                  # callback never ran
        finally:
            gate.set()
            svc.close()

    def test_submit_after_close_rejected(self):
        svc = CompileService(workers=1)
        svc.close()
        req = svc.submit("k", lambda: "v")
        assert req.rejected
        assert req.error == "service closed"


class TestAsyncLancet:
    def test_async_promotion_lands(self, tmp_path):
        opts = CompileOptions(compile_workers=2, tier1_threshold=2,
                              tier2_threshold=4)
        j = load(SRC, options=opts)
        try:
            f = j.compile_tiered("Main", "addmul")
            for _ in range(6):
                assert f(5) == 22
            deadline = time.monotonic() + 5.0
            while f.tier < 2 and time.monotonic() < deadline:
                f(5)
                time.sleep(0.005)
            assert f.tier == 2
            assert f(5) == 22
            stats = j.stats()
            assert stats["compile_service"]["completed"] >= 1
        finally:
            j.close()

    def test_prefetch_warms_unit_cache(self):
        opts = CompileOptions(compile_workers=1)
        j = load(SRC, options=opts)
        try:
            req = j.prefetch("Main", "addmul")
            assert req is not None
            req._event.wait(5.0)
            assert j.stats()["compiles"] == 1
            # The foreground call is now a unit-cache hit, not a compile.
            f = j.compile_function("Main", "addmul")
            assert f(5) == 22
            assert j.stats()["compiles"] == 1
        finally:
            j.close()

    def test_prefetch_without_service_is_noop(self):
        j = load(SRC)
        assert j.prefetch("Main", "addmul") is None

    def test_close_is_idempotent(self):
        j = load(SRC, options=CompileOptions(compile_workers=1))
        j.close()
        j.close()
        assert j.compile_function("Main", "addmul")(5) == 22


PROG = '''
def hot(x) {
  var acc = 0;
  var i = 0;
  while (i < 10) { acc = acc + x * i; i = i + 1; }
  return acc;
}
'''


def _run_cli(tmp_path, *extra, check=True):
    prog = tmp_path / "prog.mj"
    if not prog.exists():
        prog.write_text(PROG)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                     "src")
    env.pop("REPRO_NO_PERSIST", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "jit", str(prog), "hot", "4",
         "--cache-dir", str(tmp_path / "cc")] + list(extra),
        capture_output=True, text=True, env=env)
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def _stats(proc):
    err = proc.stderr
    return json.loads(err[err.index("{"):])


class TestWarmStartSubprocess:
    def test_second_process_zero_compiles_identical_code(self, tmp_path):
        cold = _run_cli(tmp_path, "--jit-stats", "--show-code")
        warm = _run_cli(tmp_path, "--jit-stats", "--show-code")
        assert cold.stdout == warm.stdout
        cold_stats, warm_stats = _stats(cold), _stats(warm)
        assert cold_stats["compiles"] >= 1
        assert warm_stats["compiles"] == 0
        assert warm_stats["codecache"]["hits"] >= 1

        def code_section(proc):
            err = proc.stderr
            start = err.index("--- generated code ---")
            return err[start:err.index("\n{", start)]

        assert code_section(cold) == code_section(warm)

    def test_corrupt_entry_quarantined_across_processes(self, tmp_path):
        cold = _run_cli(tmp_path, "--jit-stats")
        cache_dir = tmp_path / "cc"
        (entry,) = [p for p in os.listdir(cache_dir)
                    if p.endswith(".json")]
        path = cache_dir / entry
        path.write_text(path.read_text()[:25])     # truncate

        after = _run_cli(tmp_path, "--jit-stats")
        assert after.stdout == cold.stdout         # still correct
        stats = _stats(after)
        assert stats["compiles"] >= 1
        assert stats["codecache"]["quarantines"] == 1
        assert os.path.exists(str(path) + ".quarantine")

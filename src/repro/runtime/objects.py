"""Guest heap objects.

Guest values map onto host values: MiniJVM ints/floats/bools/strings are
Python ints/floats/bools/strs, ``null`` is ``None``, arrays are Python
lists, and class instances are :class:`Obj`. This is the "store component
modeled directly by the JVM heap" of the paper's interpreter (section 2.1)
— our JVM heap is the CPython heap.
"""

from __future__ import annotations

from repro.errors import GuestError


class RtClass:
    """A linked (runtime) class: merged field set, resolved method cache."""

    __slots__ = ("name", "classfile", "superclass", "all_fields",
                 "method_cache", "stable_fields")

    def __init__(self, name, classfile, superclass):
        self.name = name
        self.classfile = classfile
        self.superclass = superclass
        # Field name -> FieldInfo, including inherited fields.
        self.all_fields = dict(superclass.all_fields) if superclass else {}
        self.all_fields.update(classfile.fields)
        # Virtual-dispatch cache: method name -> MethodInfo (walks supers).
        self.method_cache = {}
        # Fields annotated @stable (speculation, paper 3.2); set of names.
        self.stable_fields = set(superclass.stable_fields) if superclass else set()

    def lookup_method(self, name):
        """Resolve ``name`` against this class, walking the super chain."""
        m = self.method_cache.get(name)
        if m is None and name not in self.method_cache:
            cls = self
            while cls is not None:
                m = cls.classfile.methods.get(name)
                if m is not None:
                    break
                cls = cls.superclass
            self.method_cache[name] = m
        return m

    def field_info(self, name):
        return self.all_fields.get(name)

    def is_subclass_of(self, other_name):
        cls = self
        while cls is not None:
            if cls.name == other_name:
                return True
            cls = cls.superclass
        return False

    def __repr__(self):
        return "RtClass(%s)" % self.name


class Obj:
    """A guest object: a runtime class plus a field dictionary."""

    __slots__ = ("cls", "fields", "_stable_deps")

    def __init__(self, cls, fields=None):
        self.cls = cls
        self.fields = fields if fields is not None else {}
        self._stable_deps = None  # lazily-created stable-field dependency map

    def get(self, name):
        try:
            return self.fields[name]
        except KeyError:
            if self.cls.field_info(name) is not None:
                return None
            raise GuestError("no field %r on %s" % (name, self.cls.name))

    def put(self, name, value):
        if self.cls.field_info(name) is None:
            raise GuestError("no field %r on %s" % (name, self.cls.name))
        if self._stable_deps and name in self._stable_deps:
            # Invalidate compiled code that speculated on this @stable field.
            for compiled in self._stable_deps.pop(name):
                compiled.invalidate("stable field %s.%s changed"
                                    % (self.cls.name, name))
        self.fields[name] = value

    def add_stable_dep(self, field_name, compiled):
        """Register compiled code that must be invalidated when
        ``field_name`` (declared @stable) is written."""
        if self._stable_deps is None:
            self._stable_deps = {}
        self._stable_deps.setdefault(field_name, set()).add(compiled)

    def __repr__(self):
        return "<%s obj %s>" % (self.cls.name, self.fields)


def new_instance(cls):
    """Allocate an instance with all fields null-initialized."""
    return Obj(cls, {name: None for name in cls.all_fields})

"""Parallel-safety analysis: a static race detector for Delite ops.

The Delite evaluation assumes parallel patterns are safe to chunk across
cores. This module *proves* that assumption per op instead of trusting
it (the PR 7 philosophy: check the compiler's claims), so the runtime can
gate which ops are ever allowed on a real parallel backend.

Per kernel we compute an effect/footprint summary over its compiled IR
(reusing the per-op facts in :mod:`repro.analysis.effects` and the
freshness notion of :mod:`repro.analysis.escape`), then classify each
:class:`~repro.delite.ops.DeliteOp` into a three-point lattice:

* ``ProvenParallel`` — per-element footprints are disjoint: the kernel
  never writes to uniforms or captured state, performs no residual calls
  with unknown effects, and every output is allocation-fresh. Chunked
  execution over disjoint index ranges commutes with sequential
  execution.
* ``ProvenSequential`` — provably *not* safe to chunk: the kernel writes
  shared state (a captured accumulator, a uniform), or a reduce's
  combine function is not proven associative/commutative (the runtime
  combines chunk partials with ``+``; a non-additive fold would compute
  a different answer when chunked).
* ``Unknown`` — residual calls, missing kernel IR, or guard/deopt side
  exits whose off-trace behaviour cannot be bounded. Treated exactly
  like ``ProvenSequential`` by the backend gate: unproven is unsafe.

Builtin patterns (:class:`ElementwiseBuiltin` / :class:`ReduceBuiltin`)
ship no guest IR; they are classified by *machine-checked contract*:
elementwise builtins are disjoint by construction (and that claim is
cross-validated at runtime by the :mod:`repro.analysis.raced` sanitizer
under ``REPRO_PARSAFE=check``), while reduce builtins must pass an
associativity/commutativity probe of their ``combine`` function.

The module also hosts the fusion-legality checker consulted by
:mod:`repro.delite.fusion`: a *preflight* check that refuses a rewrite
whose kernels it cannot prove safe, and a *re-checker* that validates
every performed rewrite after the fact, mirroring how
:mod:`repro.analysis.validate` re-checks the optimizer.
"""

from __future__ import annotations

import os

from repro.analysis.effects import (ALLOC_OPS, LOAD_OPS, STORE_OPS,
                                    fresh_syms, invoke_summary, is_total,
                                    may_alias, method_effect_summary)
from repro.lms.ir import Deopt, Effect, OsrCompile
from repro.lms.rep import Rep, Sym

#: The verdict lattice (strings so flags/JSON stay trivially portable).
PROVEN_PARALLEL = "ProvenParallel"
PROVEN_SEQUENTIAL = "ProvenSequential"
UNKNOWN = "Unknown"

VERDICTS = (PROVEN_PARALLEL, PROVEN_SEQUENTIAL, UNKNOWN)


def parsafe_mode_from_env():
    """The REPRO_PARSAFE environment default: off | check | enforce."""
    mode = os.environ.get("REPRO_PARSAFE", "").strip().lower()
    return mode if mode in ("check", "enforce") else "off"


class ParVerdict:
    """One op's classification, with blame provenance: *which* statement
    (or contract) broke — or established — footprint disjointness."""

    __slots__ = ("status", "checker", "blame", "op_kind", "op_name",
                 "kernel_name")

    def __init__(self, status, checker, blame, op_kind="", op_name="",
                 kernel_name=None):
        self.status = status
        self.checker = checker       # which checker decided
        self.blame = blame           # human provenance
        self.op_kind = op_kind
        self.op_name = op_name
        self.kernel_name = kernel_name

    @property
    def proven_parallel(self):
        return self.status == PROVEN_PARALLEL

    def to_dict(self):
        return {"status": self.status, "checker": self.checker,
                "blame": self.blame, "op_kind": self.op_kind,
                "op_name": self.op_name, "kernel_name": self.kernel_name}

    def __repr__(self):
        return "<ParVerdict %s %s [%s] %s>" % (
            self.op_name, self.status, self.checker, self.blame)


class KernelSummary:
    """Effect/footprint summary of one kernel's compiled IR.

    ``shared_writes`` lists heap stores whose base is not an
    allocation-fresh object of the kernel itself — writes that chunked
    execution would interleave across cores. ``residuals`` lists
    statements whose effects cannot be bounded statically (calls,
    impure natives, nested Delite launches). ``total`` means no
    statement can raise and there are no guard/deopt side exits, so the
    kernel may execute on paths the original program skipped (the LICM
    hoisting criterion)."""

    __slots__ = ("shared_writes", "residuals", "reads", "allocates",
                 "may_throw", "deopt_exits")

    def __init__(self):
        self.shared_writes = []      # blame strings
        self.residuals = []          # blame strings
        self.reads = False
        self.allocates = False
        self.may_throw = False
        self.deopt_exits = False

    @property
    def write_free(self):
        """No statically visible write to shared state and no residual
        statement that could hide one."""
        return not self.shared_writes and not self.residuals

    @property
    def total(self):
        return not self.may_throw and not self.deopt_exits

    @property
    def blame(self):
        if self.shared_writes:
            return self.shared_writes[0]
        if self.residuals:
            return self.residuals[0]
        return None

    def __repr__(self):
        return "KernelSummary(writes=%d, residuals=%d, reads=%s, total=%s)" \
            % (len(self.shared_writes), len(self.residuals), self.reads,
               self.total)


#: IR ops that transfer control to a residual call.
_CALL_OPS = ("invoke_method", "invoke_virtual", "invoke_static", "call")


def summarize_kernel(kernel):
    """Summary of a kernel's compiled scalar IR; ``None`` when the kernel
    has no IR to analyze (host-written kernels). Memoized on the kernel
    object (kernels are immutable descriptors)."""
    cached = getattr(kernel, "_parsafe_summary", None)
    if cached is not None:
        return cached
    ir = getattr(getattr(kernel, "scalar_fn", None), "ir", None)
    if ir is None:
        return None
    summary = _summarize_blocks(ir.blocks)
    if summary.deopt_exits:
        # A side exit resumes the *guest method* in the interpreter; the
        # IR proof only covers the speculated fast path. Bound the
        # off-trace behaviour with the bytecode-level effect summary of
        # the closure's apply method (opaque summaries stay residual).
        closure = getattr(kernel, "guest_closure", None)
        method = closure.cls.lookup_method("apply") \
            if closure is not None else None
        bc = method_effect_summary(method) if method is not None else None
        if bc is None or bc.writes or bc.calls:
            summary.residuals.append(
                "guard/deopt side exit with unbounded off-trace effects")
    kernel._parsafe_summary = summary
    return summary


def _summarize_blocks(blocks):
    summary = KernelSummary()
    fresh = fresh_syms(blocks)
    for block in blocks.values():
        for stmt in block.stmts:
            op = stmt.op
            if op in STORE_OPS:
                base = stmt.args[0]
                if isinstance(base, Sym) and base.name in fresh:
                    continue          # initializing a fresh allocation
                summary.shared_writes.append(
                    "%s = %s(%s): writes shared/captured state"
                    % (stmt.sym, op, ", ".join(map(repr, stmt.args))))
            elif op == "delite":
                summary.residuals.append(
                    "%s: nested Delite launch" % (stmt.sym,))
            elif op == "native":
                nat = stmt.args[0]
                if not getattr(nat, "pure", False):
                    summary.residuals.append(
                        "%s = native %s: impure native"
                        % (stmt.sym, getattr(nat, "name", nat)))
            elif op in _CALL_OPS or stmt.effect in (Effect.CALL, Effect.IO):
                callee = invoke_summary(stmt)
                if callee is not None and callee.is_read_only:
                    summary.reads = summary.reads or callee.reads
                    summary.may_throw |= callee.may_throw
                else:
                    summary.residuals.append(
                        "%s = %s(...): residual call with unknown effects"
                        % (stmt.sym, op))
            elif op in LOAD_OPS:
                summary.reads = True
            elif op in ALLOC_OPS:
                summary.allocates = True
            if stmt.effect is Effect.GUARD:
                summary.deopt_exits = True
            if not is_total(stmt) and stmt.effect in (Effect.PURE,
                                                      Effect.READ):
                summary.may_throw = True
        if isinstance(block.terminator, (Deopt, OsrCompile)):
            summary.deopt_exits = True
    return summary


# -- reduce-combine legality -------------------------------------------------

#: Probe values: exact binary fractions so float combine probes are
#: bit-exact under reassociation when the operation really is one of the
#: exactly-representable monoids (+ on small dyadics, min/max, ...).
_PROBE_VALUES = (0.5, -2.0, 3.25, 7.0)


def probe_combine(combine):
    """Machine-check a builtin's ``combine`` for associativity and
    commutativity by probing on exact values (the Druid stance: metadata
    must be checkable, not hand-asserted). Sound in the False direction;
    a passing probe is cross-validated by the runtime sanitizer."""
    try:
        for a in _PROBE_VALUES:
            for b in _PROBE_VALUES:
                if combine(a, b) != combine(b, a):
                    return False
                for c in _PROBE_VALUES:
                    if combine(combine(a, b), c) != combine(a, combine(b, c)):
                        return False
    except Exception:
        return False
    return True


def reduce_fold_parallel(kernel):
    """Is a guest fold kernel ``fun(acc, x) => ...`` safe to chunk under
    the runtime's ``+`` partial combine? True only when the kernel IR is
    a straight-line additive fold: ``return add(acc, g(x))`` with the
    accumulator appearing exactly once, as a top-level addend. Anything
    else (subtraction, min-tracking, state) must stay sequential."""
    ir = getattr(getattr(kernel, "scalar_fn", None), "ir", None)
    if ir is None:
        return False
    blocks = [b for b in ir.blocks.values()]
    if len(blocks) != 1:
        return False
    block = blocks[0]
    from repro.lms.ir import Return
    if not isinstance(block.terminator, Return):
        return False
    summary = _summarize_blocks(ir.blocks)
    if not summary.write_free or summary.deopt_exits:
        return False
    acc = Sym("a1")                      # first kernel parameter
    acc_uses = 0
    acc_in_add = False
    defs = {s.sym.name: s for s in block.stmts}
    for stmt in block.stmts:
        for a in stmt.args:
            if a == acc:
                acc_uses += 1
                if stmt.op == "add":
                    acc_in_add = True
    ret = block.terminator.value
    if ret == acc:
        return False                     # fold ignores elements? keep seq
    ret_def = defs.get(ret.name) if isinstance(ret, Sym) else None
    if ret_def is None or ret_def.op != "add":
        return False
    return acc_uses == 1 and acc_in_add and acc in ret_def.args


# -- op classification -------------------------------------------------------

def classify_op(op):
    """Classify one Delite op descriptor; memoized on the op object
    (descriptors are immutable and shared between stmt and runtime, so
    the compile-time verdict is exactly the one the backend gate sees)."""
    cached = getattr(op, "_parsafe_verdict", None)
    if cached is not None:
        return cached
    verdict = _classify(op)
    try:
        op._parsafe_verdict = verdict
    except AttributeError:       # descriptors define __slots__? none do
        pass
    return verdict


def _classify(op):
    from repro.delite.ops import (ElementwiseBuiltin, MapIndexedOp, MapOp,
                                  MapReduceOp, RangeMapReduceOp,
                                  ReduceBuiltin, ReduceOp, ZipMapOp,
                                  ZipWithIndexOp)
    kind = type(op).__name__
    name = getattr(op, "name", kind)

    def verdict(status, checker, blame, kernel=None):
        return ParVerdict(status, checker, blame, op_kind=kind,
                          op_name=name,
                          kernel_name=getattr(kernel, "name", None))

    if isinstance(op, ZipWithIndexOp):
        return verdict(PROVEN_SEQUENTIAL, "aos-materialize",
                       "materializes AoS pairs in traversal order")
    if isinstance(op, ElementwiseBuiltin):
        return verdict(PROVEN_PARALLEL, "builtin-contract",
                       "elementwise builtin: per-element footprints "
                       "disjoint by construction (sanitizer-validated)")
    if isinstance(op, ReduceBuiltin):
        if probe_combine(op.combine):
            return verdict(PROVEN_PARALLEL, "combine-probe",
                           "combine probed associative/commutative")
        return verdict(PROVEN_SEQUENTIAL, "combine-probe",
                       "combine not proven associative/commutative")
    if isinstance(op, (MapOp, MapIndexedOp, ZipMapOp, MapReduceOp,
                       RangeMapReduceOp)):
        kernel = op.kernel
        summary = summarize_kernel(kernel)
        if summary is None:
            return verdict(UNKNOWN, "kernel-footprint",
                           "no kernel IR to analyze (host-written kernel)",
                           kernel)
        if summary.shared_writes:
            return verdict(PROVEN_SEQUENTIAL, "kernel-footprint",
                           summary.blame, kernel)
        if summary.residuals:
            return verdict(UNKNOWN, "kernel-footprint", summary.blame,
                           kernel)
        return verdict(PROVEN_PARALLEL, "kernel-footprint",
                       "per-element footprints disjoint: no shared "
                       "writes, outputs allocation-fresh", kernel)
    if isinstance(op, ReduceOp):
        if op.kernel is None:
            return verdict(PROVEN_PARALLEL, "reduce-combine",
                           "builtin sum: associative/commutative")
        if reduce_fold_parallel(op.kernel):
            return verdict(PROVEN_PARALLEL, "reduce-combine",
                           "additive fold: combine-by-+ proven sound",
                           op.kernel)
        return verdict(PROVEN_SEQUENTIAL, "reduce-combine",
                       "fold kernel not proven an additive "
                       "associative/commutative combine", op.kernel)
    return verdict(UNKNOWN, "kernel-footprint",
                   "unrecognized op kind %s" % kind)


def classify_blocks(blocks):
    """Classify every Delite statement in a compiled unit's CFG. Returns
    ``[(stmt, ParVerdict)]`` and attaches each verdict to the statement's
    flags (``stmt.flags['parsafe']``) for downstream introspection."""
    verdicts = []
    for block in blocks.values():
        for stmt in block.stmts:
            if stmt.op != "delite":
                continue
            v = classify_op(stmt.args[0])
            stmt.flags["parsafe"] = v.status
            stmt.flags["parsafe_verdict"] = v
            verdicts.append((stmt, v))
    return verdicts


# -- optimization-facing facts ----------------------------------------------

def delite_write_free(stmt):
    """May this ``delite`` statement write any pre-existing heap object?
    False (proven write-free) lets GVN keep cached loads alive across
    the launch and lets :func:`repro.analysis.effects.clobbers` stop
    assuming arbitrary writes."""
    op = stmt.args[0]
    from repro.delite.ops import (ElementwiseBuiltin, ReduceBuiltin,
                                  ZipWithIndexOp)
    if isinstance(op, (ElementwiseBuiltin, ReduceBuiltin, ZipWithIndexOp)):
        return True                  # builtins read inputs, write nothing
    kernel = getattr(op, "kernel", None)
    if kernel is None:
        return True                  # ReduceOp(None): builtin sum
    summary = summarize_kernel(kernel)
    return summary is not None and summary.write_free


def delite_scalar_result(stmt):
    """Does the op produce a scalar (identity-free) value? Scalar results
    are trivially immutable, so the launch is safe to CSE/hoist when the
    kernel is write-free — array results carry identity (guests may
    mutate them) and stay pinned like allocations."""
    op = stmt.args[0]
    return bool(getattr(op, "scalar_result", False))


def delite_total(stmt):
    """May the launch execute on paths the original program skipped?
    Builtins declare totality by contract (tuned, vetted patterns);
    guest kernels must prove it from their IR."""
    op = stmt.args[0]
    if getattr(op, "total", False):
        return True
    kernel = getattr(op, "kernel", None)
    if kernel is None:
        return False
    summary = summarize_kernel(kernel)
    return summary is not None and summary.write_free and summary.total


def delite_cse_key(stmt):
    """Block-local CSE key for a Delite launch, or None when not
    CSE-able. Requires a write-free kernel (result depends only on the
    inputs and the heap) and a scalar result (no identity to duplicate);
    keyed on the op descriptor's identity plus the argument reps."""
    if stmt.op != "delite":
        return None
    if not delite_scalar_result(stmt) or not delite_write_free(stmt):
        return None
    args = stmt.args[1:]
    if not all(isinstance(a, Rep) for a in args):
        return None
    return ("delite", id(stmt.args[0])) + tuple(args)


# -- fusion legality ---------------------------------------------------------

class FusionRecord:
    """Journal entry for one fusion.py rewrite, re-checked post-hoc."""

    __slots__ = ("kind", "stmt", "fused_op", "kernels", "elem_reps")

    def __init__(self, kind, stmt, fused_op, kernels, elem_reps=()):
        self.kind = kind             # 'map-map' | 'map-reduce' | 'soa'
        self.stmt = stmt
        self.fused_op = fused_op
        self.kernels = kernels       # the guest kernels composed
        self.elem_reps = tuple(elem_reps)

    def __repr__(self):
        return "<FusionRecord %s %s>" % (self.kind, self.fused_op)


def check_fusion(kind, kernels, elem_reps=(), fresh=frozenset()):
    """Fusion-legality check shared by the preflight (before a rewrite)
    and the re-checker (after). Returns ``(ok, checker, reason)``.

    * ``zip-alias`` — a ZipMap whose element inputs may alias is only
      pointwise-safe when the kernel is proven write-free; an unproven
      kernel observing the same array through both inputs could see its
      own writes in a chunk-order-dependent way.
    * ``stateful-kernel`` — composing kernels reorders their effects
      (unfused: all inner applications, then all outer; fused:
      interleaved per element), so every fused kernel must be proven
      write-free with no unknown residuals.
    * ``reduce-combine`` — a rewrite into a MapReduce implies the
      runtime's ``+`` partial combine; only additive combines are legal
      (all current rewrites target ``ReduceOp(None)``, which is).
    """
    aliased = len(elem_reps) == 2 and may_alias(elem_reps[0], elem_reps[1],
                                                fresh)
    for kernel in kernels:
        summary = summarize_kernel(kernel)
        proven = summary is not None and summary.write_free
        if proven:
            continue
        blame = summary.blame if summary is not None \
            else "no kernel IR to analyze"
        if aliased:
            return (False, "zip-alias",
                    "aliased element inputs to ZipMapOp with unproven "
                    "kernel %s: %s" % (kernel.name, blame))
        return (False, "stateful-kernel",
                "kernel %s not proven safe to fuse: %s"
                % (kernel.name, blame))
    return (True, None, None)


def recheck_fusions(records, fresh=frozenset()):
    """Validate every performed rewrite against the summaries (the
    fusion analogue of per-pass translation validation). Returns a list
    of finding strings — empty when the preflight did its job."""
    findings = []
    for record in records:
        ok, checker, reason = check_fusion(record.kind, record.kernels,
                                           record.elem_reps, fresh)
        if not ok:
            findings.append("illegal %s fusion into %s [%s]: %s"
                            % (record.kind, record.fused_op.name, checker,
                               reason))
    return findings

#!/usr/bin/env python
"""Interpreter + Staging = Compiler, on the paper's toy language
(paper section 2.1, Fig. 5).

A direct interpreter and a *staged* interpreter for the while-language;
the staged one emits Python instead of computing values, turning the
interpreter into a compiler by changing only the value domain.

Run:  python examples/staged_toy_interpreter.py
"""


# -- syntax -------------------------------------------------------------------

class Const:
    def __init__(self, c):
        self.c = c


class Var:
    def __init__(self, x):
        self.x = x


class Plus:
    def __init__(self, e1, e2):
        self.e1, self.e2 = e1, e2


class Assign:
    def __init__(self, x, e):
        self.x, self.e = x, e


class While:
    def __init__(self, e, body):
        self.e, self.body = e, body


class Seq:
    def __init__(self, *stms):
        self.stms = stms


# -- the direct interpreter (read off the denotational semantics) --------------

def eval_exp(e, st):
    if isinstance(e, Const):
        return e.c
    if isinstance(e, Var):
        return st[e.x]
    if isinstance(e, Plus):
        return eval_exp(e.e1, st) + eval_exp(e.e2, st)
    raise TypeError(e)


def exec_stm(s, st):
    if isinstance(s, Assign):
        st = dict(st)
        st[s.x] = eval_exp(s.e, st)
        return st
    if isinstance(s, While):
        while eval_exp(s.e, st) != 0:
            st = exec_stm(s.body, st)
        return st
    if isinstance(s, Seq):
        for sub in s.stms:
            st = exec_stm(sub, st)
        return st
    raise TypeError(s)


# -- the staged interpreter: values become code strings -------------------------
# (paper: "type Store = Rep[Map[String,Int]]; type Val = Rep[Int]" — we
# change nothing else.)

def stage_exp(e, st):
    if isinstance(e, Const):
        return repr(e.c)
    if isinstance(e, Var):
        return "%s[%r]" % (st, e.x)
    if isinstance(e, Plus):
        return "(%s + %s)" % (stage_exp(e.e1, st), stage_exp(e.e2, st))
    raise TypeError(e)


def stage_stm(s, st, out, indent="    "):
    if isinstance(s, Assign):
        out.append("%s%s[%r] = %s" % (indent, st, s.x, stage_exp(s.e, st)))
        return
    if isinstance(s, While):
        out.append("%swhile %s != 0:" % (indent, stage_exp(s.e, st)))
        stage_stm(s.body, st, out, indent + "    ")
        return
    if isinstance(s, Seq):
        for sub in s.stms:
            stage_stm(sub, st, out, indent)
        return
    raise TypeError(s)


def compile_program(s):
    """The first Futamura projection: specialize the interpreter to a
    program, obtaining a compiled program."""
    out = ["def compiled(st):", "    st = dict(st)"]
    stage_stm(s, "st", out)
    out.append("    return st")
    source = "\n".join(out)
    ns = {}
    exec(compile(source, "<staged>", "exec"), ns)
    return ns["compiled"], source


def main():
    # n! via: acc = 1; while (n) { acc = acc + ... }  — keep it additive:
    # sum = 0; i = n; while (i) { sum = sum + i; i = i + (-1) }
    prog = Seq(
        Assign("sum", Const(0)),
        While(Var("i"),
              Seq(Assign("sum", Plus(Var("sum"), Var("i"))),
                  Assign("i", Plus(Var("i"), Const(-1))))),
    )
    st = {"i": 10}
    interp = exec_stm(prog, st)
    compiled_fn, source = compile_program(prog)
    comp = compiled_fn(st)
    print("interpreted:", interp)
    print("compiled:   ", comp)
    assert interp == comp
    print("\n--- generated code ---")
    print(source)
    print("\nThe same type-swap at scale is repro.compiler.stagedinterp:")
    print("the MiniJVM interpreter with Rep values in its frames.")


if __name__ == "__main__":
    main()

"""IR-level analysis framework over the staged-IR CFG.

A generic forward/backward worklist dataflow solver
(:mod:`repro.analysis.dataflow`) plus the concrete passes the JIT
pipeline runs between staging and code generation:

* :mod:`repro.analysis.verify` — IR well-formedness verifier;
* :mod:`repro.analysis.liveness` / :mod:`repro.analysis.dce` — liveness
  (both staged-IR symbols and bytecode local slots), effect-aware DCE,
  redundant-guard elimination;
* :mod:`repro.analysis.fuse` — single-predecessor block fusion;
* :mod:`repro.analysis.taint` — flow-sensitive taint propagation with
  source→sink path reporting;
* :mod:`repro.analysis.alloc` — post-optimization ``checkNoAlloc``;
* :mod:`repro.analysis.validate` — per-pass translation validator
  (Alive-style simulation checking of each tier-2/trace pass);
* :mod:`repro.analysis.deoptcheck` — deopt-state verifier (every
  guard/side-exit's recorded interpreter state against bytecode-level
  liveness at the target bci);
* :mod:`repro.analysis.diagnostics` — the "JIT lint" layer.

Pass sequencing lives in :class:`repro.pipeline.passes.PassManager`.
"""

from __future__ import annotations

from repro.analysis.alloc import check_noalloc
from repro.analysis.dataflow import BackwardAnalysis, ForwardAnalysis, solve
from repro.analysis.dce import eliminate_dead, eliminate_redundant_guards
from repro.analysis.deoptcheck import check_bridge_stitch, check_deopt_state
from repro.analysis.diagnostics import Diagnostic, Diagnostics
from repro.analysis.fuse import fuse_blocks
from repro.analysis.liveness import (LivenessAnalysis, live_at,
                                     live_in_sets, live_sets)
from repro.analysis.taint import TaintAnalysis, find_leaks, taint_path
from repro.analysis.validate import snapshot_ir, validate_pass
from repro.analysis.verify import verify_ir

__all__ = [
    "BackwardAnalysis", "Diagnostic", "Diagnostics",
    "ForwardAnalysis", "LivenessAnalysis", "TaintAnalysis",
    "check_bridge_stitch", "check_deopt_state", "check_noalloc",
    "eliminate_dead", "eliminate_redundant_guards", "find_leaks",
    "fuse_blocks", "live_at", "live_in_sets", "live_sets", "snapshot_ir",
    "solve", "taint_path", "validate_pass", "verify_ir",
]

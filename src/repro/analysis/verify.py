"""IR well-formedness verifier.

Run after staging and again after block fusion / DCE (gated by
``CompileOptions.verify_ir``), this pass catches compiler bugs at the
point they are introduced instead of as ``NameError`` inside generated
code or, worse, silently wrong results. Checked invariants:

* every block ends in exactly one known terminator, and every successor
  edge targets an existing block;
* every block is reachable from the entry (the staged interpreter never
  emits orphan blocks; fusion deletes the blocks it absorbs);
* phi discipline: the ``(param, rep)`` assignments on an edge into a
  merge block name exactly the target's declared block parameters;
* def-before-use: along **every** path, each ``Sym`` operand is defined
  (by a statement, a block parameter, or a function parameter) before it
  is read — computed as a forward must-analysis (intersection over
  predecessors), i.e. availability == dominance for our block-arg SSA;
* deopt metadata: guard statements and Deopt/OsrCompile terminators
  reference an existing metadata id, and their live sets are Reps.
"""

from __future__ import annotations

from repro.analysis.cfg import phi_assigns_for_edge, predecessors, \
    reachable_from, reverse_postorder
from repro.errors import IRVerifyError
from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import Rep, Sym

_TERMINATORS = (Jump, Branch, Return, Deopt, OsrCompile)


def verify_ir(blocks, entry_id, params=(), metas=None, stage="staged",
              collect=False):
    """Verify the CFG; raises :class:`IRVerifyError` listing every
    violation (or returns the list of messages when ``collect=True``)."""
    errors = []
    if entry_id not in blocks:
        errors.append("entry block B%d does not exist" % entry_id)
        return _finish(errors, stage, collect)

    _check_shape(blocks, errors)
    if not errors:
        _check_reachability(blocks, entry_id, errors)
        _check_phi_discipline(blocks, errors)
        _check_defs(blocks, entry_id, params, errors)
        _check_deopt_metadata(blocks, metas, errors)
    return _finish(errors, stage, collect)


def _finish(errors, stage, collect):
    if collect:
        return errors
    if errors:
        raise IRVerifyError(
            "IR verification failed (%s IR): %s"
            % (stage, "; ".join(errors)), errors=errors, stage=stage)
    return []


def _check_shape(blocks, errors):
    for bid, block in blocks.items():
        term = block.terminator
        if term is None:
            errors.append("B%d has no terminator" % bid)
            continue
        if not isinstance(term, _TERMINATORS):
            errors.append("B%d has unknown terminator %r" % (bid, term))
            continue
        for succ in term.successors():
            if succ not in blocks:
                errors.append("B%d jumps to missing block B%d" % (bid, succ))


def _check_reachability(blocks, entry_id, errors):
    reachable = reachable_from(blocks, entry_id)
    for bid in sorted(blocks):
        if bid not in reachable:
            errors.append("B%d is unreachable from entry B%d"
                          % (bid, entry_id))


def _check_phi_discipline(blocks, errors):
    for bid, block in blocks.items():
        for succ in set(block.terminator.successors()):
            if succ not in blocks:
                continue
            assigns = phi_assigns_for_edge(block.terminator, succ)
            target_params = list(blocks[succ].params)
            # A Branch with both arms on the same successor concatenates
            # its assign lists; each arm must match independently.
            arms = 2 if (isinstance(block.terminator, Branch)
                         and block.terminator.true_target == succ
                         and block.terminator.false_target == succ) else 1
            expected = target_params * arms
            names = [name for name, __ in assigns]
            if names != expected:
                errors.append(
                    "phi mismatch on edge B%d->B%d: assigns %r but target "
                    "declares params %r" % (bid, succ, names, target_params))
            for __, rep in assigns:
                if not isinstance(rep, Rep):
                    errors.append("non-Rep phi value %r on edge B%d->B%d"
                                  % (rep, bid, succ))


def _check_defs(blocks, entry_id, params, errors):
    """Forward must-analysis of available definitions; flags any use of a
    name not defined on every path to it."""
    preds = predecessors(blocks)
    order = reverse_postorder(blocks, entry_id)
    root = frozenset(params)
    avail_out = {}        # bid -> frozenset of names available at exit

    def block_out(bid, avail_in):
        defs = set(avail_in)
        defs.update(blocks[bid].params)
        for stmt in blocks[bid].stmts:
            defs.add(stmt.sym.name)
        return frozenset(defs)

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == entry_id:
                avail_in = root
            else:
                pred_outs = [avail_out[p] for p in preds[bid]
                             if p in avail_out]
                if not pred_outs:
                    continue          # no processed predecessor yet
                avail_in = frozenset.intersection(*pred_outs)
            out = block_out(bid, avail_in)
            if avail_out.get(bid) != out:
                avail_out[bid] = out
                changed = True

    for bid in order:
        if bid == entry_id:
            defined = set(root)
        else:
            pred_outs = [avail_out[p] for p in preds[bid] if p in avail_out]
            defined = set(frozenset.intersection(*pred_outs)) \
                if pred_outs else set()
        defined.update(blocks[bid].params)
        for stmt in blocks[bid].stmts:
            for arg in stmt.args:
                if isinstance(arg, Sym) and arg.name not in defined:
                    errors.append(
                        "B%d: %r uses %s before definition"
                        % (bid, stmt, arg.name))
            defined.add(stmt.sym.name)
        term = blocks[bid].terminator
        for rep in _term_reps(term):
            if isinstance(rep, Sym) and rep.name not in defined:
                errors.append("B%d: terminator %r uses %s before definition"
                              % (bid, term, rep.name))


def _term_reps(term):
    if isinstance(term, Jump):
        return [rep for __, rep in term.phi_assigns]
    if isinstance(term, Branch):
        return [term.cond] + [rep for __, rep in term.true_assigns] \
            + [rep for __, rep in term.false_assigns]
    if isinstance(term, Return):
        return [term.value]
    if isinstance(term, (Deopt, OsrCompile)):
        return list(term.lives)
    return []


def _check_deopt_metadata(blocks, metas, errors):
    n_metas = None if metas is None else len(metas)

    def check_meta(bid, what, meta_id):
        if not isinstance(meta_id, int):
            errors.append("B%d: %s has non-integer meta id %r"
                          % (bid, what, meta_id))
        elif n_metas is not None and not 0 <= meta_id < n_metas:
            errors.append("B%d: %s references deopt meta #%r (have %d)"
                          % (bid, what, meta_id, n_metas))

    for bid, block in blocks.items():
        for stmt in block.stmts:
            if stmt.op in ("guard", "guard_not"):
                if len(stmt.args) < 2:
                    errors.append("B%d: malformed guard %r" % (bid, stmt))
                    continue
                check_meta(bid, "guard", stmt.args[1])
                for rep in stmt.args[2:]:
                    if not isinstance(rep, Rep):
                        errors.append("B%d: guard live value %r is not a Rep"
                                      % (bid, rep))
            elif stmt.op == "make_cont":
                check_meta(bid, "make_cont", stmt.args[0])
        term = block.terminator
        if isinstance(term, (Deopt, OsrCompile)):
            check_meta(bid, type(term).__name__, term.meta_id)
            for rep in term.lives:
                if not isinstance(rep, Rep):
                    errors.append("B%d: deopt live value %r is not a Rep"
                                  % (bid, rep))

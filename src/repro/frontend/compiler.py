"""MiniJ to MiniJVM bytecode compiler.

Lambdas compile to synthesized classes (``<Module>$L<n>``) whose captured
variables become ``val`` fields and whose body becomes an ``apply`` method —
the same shape Scala closures take in JVM bytecode, which is what lets the
JIT's ``funR`` unfold them (paper 3.1).

``Lancet.freeze(e)`` and ``Lancet.stable(e)`` take by-name arguments: the
compiler wraps ``e`` in a zero-argument thunk, mirroring Scala's ``=> A``.
"""

from __future__ import annotations

from repro.bytecode.builder import MethodBuilder
from repro.bytecode.classfile import ClassFile
from repro.bytecode.opcodes import Op
from repro.errors import MiniJCompileError
from repro.frontend import ast
from repro.frontend.parser import parse

# Bare-call builtins resolved to Builtins.* natives.
BUILTIN_FUNCS = {
    "len", "print", "println", "str", "split", "splitLines", "indexOf",
    "contains", "charAt", "charCode", "fromCharCode", "substring",
    "startsWith", "parseInt", "parseFloat", "newArray", "copyArray",
    "concatArrays", "now",
}

# Lancet intrinsics whose first argument is by-name (wrapped in a thunk).
BY_NAME_INTRINSICS = {"freeze", "stable"}


def compile_source(source, module="Main", filename="<minij>"):
    """Compile MiniJ ``source``; returns a list of ClassFiles (the module
    class for top-level functions, declared classes, synthesized closure
    classes)."""
    program = parse(source)
    ctx = _ModuleCtx(module, program)
    module_cf = ClassFile(module, source_name=filename)
    ctx.classfiles.append(module_cf)

    for cdecl in program.classes:
        cf = ClassFile(cdecl.name, super_name=cdecl.super_name,
                       source_name=filename)
        for fname, is_val in cdecl.fields:
            cf.add_field(fname, is_val=is_val)
        ctx.classfiles.append(cf)
        ctx.class_decls[cdecl.name] = (cdecl, cf)

    for cdecl in program.classes:
        __, cf = ctx.class_decls[cdecl.name]
        for mdecl in cdecl.methods:
            fc = _FuncCompiler(ctx, mdecl, is_static=False, owner=cdecl)
            cf.add_method(fc.compile())

    for fdecl in program.functions:
        fc = _FuncCompiler(ctx, fdecl, is_static=True, owner=None)
        module_cf.add_method(fc.compile())

    return ctx.classfiles


class _ModuleCtx:
    """Per-compilation-unit state."""

    def __init__(self, module, program):
        self.module = module
        self.classfiles = []
        self.class_decls = {}
        self.function_names = {f.name for f in program.functions}
        self.class_names = {c.name for c in program.classes}
        self._lambda_counter = 0

    def fresh_lambda_name(self):
        self._lambda_counter += 1
        return "%s$L%d" % (self.module, self._lambda_counter)


class _FuncCompiler:
    """Compiles one function, method, or lambda body to bytecode."""

    def __init__(self, ctx, decl, is_static, owner, parent=None,
                 lambda_name=None):
        self.ctx = ctx
        self.decl = decl
        self.is_static = is_static
        self.owner = owner             # enclosing ClassDecl for methods
        self.parent = parent           # enclosing _FuncCompiler for lambdas
        self.lambda_name = lambda_name
        name = lambda_name and "apply" or decl.name
        self.b = MethodBuilder(name, len(decl.params), is_static=is_static)
        self.scopes = [{}]
        base = 0 if is_static else 1
        for i, p in enumerate(decl.params):
            self.scopes[0][p] = base + i
        # name -> capture field name; populated on demand during compilation.
        self.captures = {}
        self.captures_this = False

    # -- scope handling ---------------------------------------------------------

    def push_scope(self):
        self.scopes.append({})

    def pop_scope(self):
        self.scopes.pop()

    def declare(self, name):
        slot = self.b.alloc_slot()
        self.scopes[-1][name] = slot
        return slot

    def resolve_local(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def resolve(self, name):
        """Resolve a name: ('local', slot) | ('capture', field) | None."""
        slot = self.resolve_local(name)
        if slot is not None:
            return ("local", slot)
        if name in self.captures:
            return ("capture", name)
        if self.parent is not None and self.parent.resolve(name) is not None:
            self.captures[name] = name
            return ("capture", name)
        return None

    def err(self, node, msg):
        raise MiniJCompileError("line %s: %s" % (node.line, msg))

    # -- entry -------------------------------------------------------------------

    def compile(self):
        for stmt in self.decl.body:
            self.compile_stmt(stmt)
        return self.b.build()

    # -- statements ------------------------------------------------------------------

    def compile_stmt(self, stmt):
        self.b.cur_line = stmt.line
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.compile_expr(stmt.init)
            else:
                self.b.const(None)
            slot = self.declare(stmt.name)
            self.b.store(slot)
        elif isinstance(stmt, ast.Assign):
            self.compile_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self.compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self.compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.compile_expr(stmt.value)
                self.b.ret_val()
            else:
                self.b.ret()
        elif isinstance(stmt, ast.Throw):
            self.compile_expr(stmt.value)
            self.b.emit(Op.THROW)
        elif isinstance(stmt, ast.ExprStmt):
            self.compile_expr(stmt.expr)
            self.b.emit(Op.POP)
        else:  # pragma: no cover
            self.err(stmt, "unknown statement %r" % stmt)

    def compile_assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.Name):
            res = self.resolve(target.id)
            if res is None:
                self.err(stmt, "assignment to undeclared variable %r"
                         % target.id)
            kind, where = res
            if kind == "capture":
                self.err(stmt, "cannot assign to captured variable %r "
                               "(captures are by value)" % target.id)
            self.compile_expr(stmt.value)
            self.b.store(where)
        elif isinstance(target, ast.FieldAccess):
            self.check_val_assignment(target)
            self.compile_expr(target.recv)
            self.compile_expr(stmt.value)
            self.b.putfield(target.name)
        elif isinstance(target, ast.Index):
            self.compile_expr(target.arr)
            self.compile_expr(target.index)
            self.compile_expr(stmt.value)
            self.b.emit(Op.ASTORE)
        else:  # pragma: no cover - parser restricts targets
            self.err(stmt, "bad assignment target")

    def check_val_assignment(self, target):
        """Enforce assign-once ``val`` fields: writable only from ``init``
        of the declaring class (via ``this``)."""
        if self.owner is None or not isinstance(target.recv, ast.This):
            return
        for fname, is_val in self.owner.fields:
            if fname == target.name and is_val:
                if self.decl.name != "init" or self.lambda_name:
                    self.err(target, "val field %r can only be assigned "
                                     "in init" % fname)

    def compile_if(self, stmt):
        self.compile_expr(stmt.cond)
        else_lbl = self.b.new_label()
        end_lbl = self.b.new_label()
        self.b.jif_false(else_lbl)
        self.push_scope()
        for s in stmt.then:
            self.compile_stmt(s)
        self.pop_scope()
        self.b.jump(end_lbl)
        self.b.label(else_lbl)
        self.push_scope()
        for s in stmt.orelse:
            self.compile_stmt(s)
        self.pop_scope()
        self.b.label(end_lbl)

    def compile_while(self, stmt):
        head = self.b.new_label()
        end = self.b.new_label()
        self.b.label(head)
        self.compile_expr(stmt.cond)
        self.b.jif_false(end)
        self.push_scope()
        for s in stmt.body:
            self.compile_stmt(s)
        self.pop_scope()
        self.b.jump(head)
        self.b.label(end)

    def compile_for(self, stmt):
        """Desugar ``for (x in e)`` to an index loop over the array."""
        self.push_scope()
        self.compile_expr(stmt.iterable)
        arr = self.b.alloc_slot()
        self.b.store(arr)
        idx = self.b.alloc_slot()
        self.b.const(0).store(idx)
        head = self.b.new_label()
        end = self.b.new_label()
        self.b.label(head)
        self.b.load(idx).load(arr).emit(Op.ALEN).emit(Op.LT).jif_false(end)
        self.push_scope()
        var = self.declare(stmt.var)
        self.b.load(arr).load(idx).emit(Op.ALOAD).store(var)
        for s in stmt.body:
            self.compile_stmt(s)
        self.pop_scope()
        self.b.load(idx).const(1).emit(Op.ADD).store(idx)
        self.b.jump(head)
        self.b.label(end)
        self.pop_scope()

    # -- expressions ---------------------------------------------------------------------

    BINOPS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
              "%": Op.MOD, "==": Op.EQ, "!=": Op.NE, "<": Op.LT,
              "<=": Op.LE, ">": Op.GT, ">=": Op.GE}

    def compile_expr(self, expr):
        if isinstance(expr, ast.Literal):
            self.b.const(expr.value)
        elif isinstance(expr, ast.Name):
            self.compile_name(expr)
        elif isinstance(expr, ast.This):
            self.compile_this(expr)
        elif isinstance(expr, ast.BinOp):
            self.compile_binop(expr)
        elif isinstance(expr, ast.UnaryOp):
            self.compile_expr(expr.operand)
            self.b.emit(Op.NEG if expr.op == "-" else Op.NOT)
        elif isinstance(expr, ast.Call):
            self.compile_call(expr)
        elif isinstance(expr, ast.MethodCall):
            self.compile_method_call(expr)
        elif isinstance(expr, ast.FieldAccess):
            self.compile_expr(expr.recv)
            self.b.getfield(expr.name)
        elif isinstance(expr, ast.Index):
            self.compile_expr(expr.arr)
            self.compile_expr(expr.index)
            self.b.emit(Op.ALOAD)
        elif isinstance(expr, ast.ArrayLit):
            for el in expr.elements:
                self.compile_expr(el)
            self.b.emit(Op.ARRAY_LIT, len(expr.elements))
        elif isinstance(expr, ast.New):
            self.compile_new(expr)
        elif isinstance(expr, ast.Lambda):
            self.compile_lambda(expr)
        elif isinstance(expr, ast.InstanceOf):
            self.compile_expr(expr.expr)
            self.b.emit(Op.INSTANCEOF, expr.class_name)
        else:  # pragma: no cover
            self.err(expr, "unknown expression %r" % expr)

    def compile_name(self, expr):
        res = self.resolve(expr.id)
        if res is None:
            self.err(expr, "unknown variable %r" % expr.id)
        kind, where = res
        if kind == "local":
            self.b.load(where)
        else:
            self.b.load(0)
            self.b.getfield(where)

    def compile_this(self, expr):
        if self.lambda_name is not None:
            # Inside a lambda, `this` means the enclosing instance.
            comp = self.parent
            while comp is not None and comp.lambda_name is not None:
                comp = comp.parent
            if comp is None or comp.is_static:
                self.err(expr, "'this' used in a static context")
            self._capture_this()
            self.b.load(0)
            self.b.getfield("$this")
        else:
            if self.is_static:
                self.err(expr, "'this' used in a static context")
            self.b.load(0)

    def _capture_this(self):
        self.captures_this = True
        c = self
        # Intermediate lambdas must also capture the enclosing `this`.
        while c.parent is not None and c.parent.lambda_name is not None:
            c = c.parent
            c.captures_this = True

    def compile_binop(self, expr):
        if expr.op == "&&":
            self.compile_expr(expr.lhs)
            end = self.b.new_label()
            self.b.emit(Op.DUP).jif_false(end)
            self.b.emit(Op.POP)
            self.compile_expr(expr.rhs)
            self.b.label(end)
            return
        if expr.op == "||":
            self.compile_expr(expr.lhs)
            end = self.b.new_label()
            self.b.emit(Op.DUP).jif_true(end)
            self.b.emit(Op.POP)
            self.compile_expr(expr.rhs)
            self.b.label(end)
            return
        self.compile_expr(expr.lhs)
        self.compile_expr(expr.rhs)
        self.b.emit(self.BINOPS[expr.op])

    def compile_call(self, expr):
        """A bare-name call: local closure, builtin, or module function."""
        name = expr.func
        res = self.resolve(name)
        if res is not None:
            # Calling a closure held in a variable: load it, invoke apply.
            self.compile_name(ast.Name(name, expr.line))
            for a in expr.args:
                self.compile_expr(a)
            self.b.invoke("apply", len(expr.args))
            return
        if name == "len" and len(expr.args) == 1:
            self.compile_expr(expr.args[0])
            self.b.emit(Op.ALEN)
            return
        if name in BUILTIN_FUNCS:
            for a in expr.args:
                self.compile_expr(a)
            self.b.invoke_static("Builtins", name, len(expr.args))
            return
        if name in self.ctx.function_names:
            for a in expr.args:
                self.compile_expr(a)
            self.b.invoke_static(self.ctx.module, name, len(expr.args))
            return
        if self.owner is not None:
            # Unqualified call to a sibling method: implicit this.
            for mdecl in self.owner.methods:
                if mdecl.name == name:
                    self.compile_this(expr)
                    for a in expr.args:
                        self.compile_expr(a)
                    self.b.invoke(name, len(expr.args))
                    return
        self.err(expr, "unknown function %r" % name)

    def compile_method_call(self, expr):
        recv = expr.recv
        if isinstance(recv, ast.Name) and self.resolve(recv.id) is None:
            # Static namespace call: Class.method(args).
            if recv.id == "Lancet" and expr.name in BY_NAME_INTRINSICS:
                if len(expr.args) != 1:
                    self.err(expr, "Lancet.%s takes 1 argument" % expr.name)
                thunk = ast.Lambda([], [ast.Return(expr.args[0], expr.line)],
                                   expr.line)
                self.compile_lambda(thunk)
                self.b.invoke_static("Lancet", expr.name, 1)
                return
            for a in expr.args:
                self.compile_expr(a)
            self.b.invoke_static(recv.id, expr.name, len(expr.args))
            return
        self.compile_expr(recv)
        for a in expr.args:
            self.compile_expr(a)
        self.b.invoke(expr.name, len(expr.args))

    def compile_new(self, expr):
        # `new C(args)` always invokes init; classes without an init accept
        # the zero-argument form as a no-op (runtime rule).
        self.b.new(expr.class_name)
        self.b.emit(Op.DUP)
        for a in expr.args:
            self.compile_expr(a)
        self.b.invoke("init", len(expr.args))
        self.b.emit(Op.POP)

    def compile_lambda(self, expr):
        """Lambda-lift: compile the body into a synthesized closure class,
        then emit allocation + capture-field stores at the creation site."""
        cls_name = self.ctx.fresh_lambda_name()
        decl = ast.FuncDecl("apply", expr.params, expr.body, expr.line,
                            is_static=False)
        inner = _FuncCompiler(self.ctx, decl, is_static=False,
                              owner=self.owner, parent=self,
                              lambda_name=cls_name)
        apply_method = inner.compile()

        cf = ClassFile(cls_name, is_closure=True)
        if inner.captures_this:
            cf.add_field("$this", is_val=True)
        for cap in inner.captures:
            cf.add_field(cap, is_val=True)
        cf.add_method(apply_method)
        self.ctx.classfiles.append(cf)

        self.b.new(cls_name)
        if inner.captures_this:
            self.b.emit(Op.DUP)
            if self.lambda_name is not None:
                self._capture_this()
                self.b.load(0)
                self.b.getfield("$this")
            else:
                self.b.load(0)
            self.b.putfield("$this")
        for cap in inner.captures:
            self.b.emit(Op.DUP)
            self.compile_name(ast.Name(cap, expr.line))
            self.b.putfield(cap)

"""The observability subsystem: event traces, metrics, compile reports,
``Lancet.stats()``, and the CLI surface (--jit-stats / --trace-jit)."""

import io
import json

from repro import CompileOptions, Lancet, Telemetry
from repro.observability import EventTrace, Metrics, load_jsonl
from tests.conftest import load

SRC = '''
    def work(x) {
      var i = 0; var s = 0;
      while (i < x) { s = s + i; i = i + 1; }
      return s;
    }
    def helper(y) { return y + 1; }
'''


class TestEventTrace:
    def test_disabled_by_default(self):
        t = EventTrace()
        assert t.record("compile.start", unit="u") is None
        assert len(t) == 0

    def test_records_in_order(self):
        t = EventTrace(enabled=True)
        t.record("a", x=1)
        t.record("b", x=2)
        events = t.events()
        assert [e.kind for e in events] == ["a", "b"]
        assert [e.seq for e in events] == [1, 2]
        assert events[0].data == {"x": 1}

    def test_ring_buffer_bounded(self):
        t = EventTrace(capacity=8, enabled=True)
        for i in range(20):
            t.record("tick", i=i)
        assert len(t) == 8
        assert t.recorded == 20
        assert t.dropped == 12
        # Oldest events dropped, newest retained.
        assert [e.data["i"] for e in t.events()] == list(range(12, 20))

    def test_kind_filters(self):
        t = EventTrace(enabled=True)
        t.record("cache.hit")
        t.record("cache.miss")
        t.record("compile.start")
        assert len(t.events("cache.hit")) == 1
        assert len(t.events("cache.")) == 2       # prefix filter
        assert len(t.events("deopt")) == 0

    def test_jsonl_round_trip(self):
        t = EventTrace(enabled=True)
        t.record("compile.start", unit="Main.f")
        t.record("compile.end", unit="Main.f", seconds=0.01)
        buf = io.StringIO()
        assert t.export_jsonl(buf) == 2
        text = buf.getvalue()
        # Every line is a self-contained JSON object.
        lines = [json.loads(line) for line in text.splitlines()]
        assert len(lines) == 2
        events = load_jsonl(io.StringIO(text))
        assert [e.kind for e in events] == ["compile.start", "compile.end"]
        assert events[0].data == {"unit": "Main.f"}
        assert events[1].seq == 2

    def test_jsonl_to_path(self, tmp_path):
        t = EventTrace(enabled=True)
        t.record("x")
        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(str(path)) == 1
        assert load_jsonl(str(path))[0].kind == "x"


class TestMetrics:
    def test_counters(self):
        m = Metrics()
        assert m.get("compiles") == 0
        m.inc("compiles")
        m.inc("compiles", 2)
        assert m.get("compiles") == 3

    def test_timings(self):
        m = Metrics()
        assert m.timing("compile.total") is None
        for s in (0.5, 0.1, 0.9):
            m.observe("compile.total", s)
        t = m.timing("compile.total")
        assert t["count"] == 3
        assert t["min"] == 0.1 and t["max"] == 0.9
        assert abs(t["total"] - 1.5) < 1e-12
        assert abs(t["mean"] - 0.5) < 1e-12

    def test_snapshot_and_reset(self):
        m = Metrics()
        m.inc("a")
        m.observe("t", 1.0)
        snap = m.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["timings"]["t"]["count"] == 1
        m.reset()
        assert m.get("a") == 0 and m.timing("t") is None


class TestTelemetry:
    def test_trace_switch(self):
        tel = Telemetry()
        assert not tel.enabled
        tel.record("x")
        tel.enable_trace()
        tel.record("y")
        tel.disable_trace()
        tel.record("z")
        assert [e.kind for e in tel.events()] == ["y"]

    def test_counters_always_on(self):
        tel = Telemetry()
        tel.inc("compiles")
        assert tel.metrics.get("compiles") == 1

    def test_reset(self):
        tel = Telemetry().enable_trace()
        tel.record("x")
        tel.inc("n")
        tel.reset()
        assert tel.events() == [] and tel.metrics.get("n") == 0


class TestCompileReport:
    def test_attached_to_compiled_function(self):
        j = load(SRC)
        c = j.compile_function("Main", "work")
        r = c.report
        assert r.name == "Main.work"
        assert r.passes >= 1
        assert r.blocks >= 1
        assert r.stmts >= 1
        assert set(r.phases) >= {"staging", "codegen"}
        assert r.total_seconds > 0
        d = r.to_dict()
        assert d["name"] == "Main.work"
        assert d["total_seconds"] == r.total_seconds
        json.dumps(d)           # JSON-serializable

    def test_per_phase_wall_times(self):
        j = load(SRC)
        c = j.compile_function("Main", "work")
        for phase, seconds in c.report.phases.items():
            assert seconds >= 0, phase


class TestLancetStats:
    def test_compile_counts_and_timings(self):
        j = load(SRC)
        j.compile_function("Main", "work")
        j.compile_function("Main", "helper")
        stats = j.stats()
        assert stats["compiles"] == 2
        assert stats["compile_seconds"] > 0
        assert stats["compile_timing"]["count"] == 2
        assert "staging" in stats["phase_timings"]
        assert "codegen" in stats["phase_timings"]
        assert stats["units"] == ["Main.work", "Main.helper"]

    def test_cache_traffic_aggregated(self):
        j = load(SRC)
        j.compile_function("Main", "work")
        j.compile_function("Main", "work")
        stats = j.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["compiles"] == 1

    def test_interp_invocations_counted(self):
        j = load(SRC)
        j.vm.call("Main", "work", [3])
        j.vm.call("Main", "helper", [1])
        assert j.stats()["interp_invocations"] >= 2

    def test_stats_json_serializable(self):
        j = load(SRC)
        j.compile_function("Main", "work")
        json.dumps(j.stats())

    def test_delite_kernels_counted(self):
        import numpy as np
        from repro.delite.ops import MapOp
        from repro.delite.kernels import Kernel
        j = Lancet()
        k = Kernel(lambda x: x * 2, 1, numpy_fn=lambda x: x * 2,
                   name="double")
        op = MapOp(k)
        out = j.delite.run(op, np.array([1.0, 2.0]))
        assert list(out) == [2.0, 4.0]
        assert j.stats()["delite_kernels"] == 1


class TestUnitCache:
    def test_options_fingerprint_distinguishes(self):
        """Different CompileOptions must compile separate specializations."""
        j = load(SRC)
        a = j.compile_function("Main", "work")
        b = j.compile_function("Main", "work",
                               options=CompileOptions(inline_policy="never"))
        assert a is not b
        assert j.telemetry.metrics.get("compiles") == 2

    def test_invalidated_cached_unit_recompiles_on_call(self):
        j = load(SRC)
        c = j.compile_function("Main", "work")
        c.invalidate("test")
        cached = j.compile_function("Main", "work")
        assert cached is c              # still the cached wrapper
        assert cached(4) == 6           # transparently recompiles
        assert cached.valid


class TestTraceOfCompilation:
    def test_compile_events_well_formed(self):
        j = load(SRC)
        j.telemetry.enable_trace()
        j.compile_function("Main", "work")
        kinds = [e.kind for e in j.telemetry.events()]
        assert kinds.index("compile.start") < kinds.index("compile.end")
        end = j.telemetry.events("compile.end")[0]
        assert end.data["unit"] == "Main.work"
        assert end.data["seconds"] > 0
        assert end.data["blocks"] >= 1

    def test_analysis_report_event(self):
        j = load(SRC)
        j.telemetry.enable_trace()
        j.compile_function("Main", "work")
        reports = j.telemetry.events("analysis.report")
        assert len(reports) == 1
        data = reports[0].data
        assert data["unit"] == "Main.work"
        assert data["blocks"] >= 1
        assert data["leaks"] == 0 and data["noalloc_sites"] == 0
        assert "removed_stmts" in data and "removed_guards" in data

    def test_analysis_verify_fail_event(self):
        from repro.analysis import Diagnostics
        from repro.compiler.stagedinterp import CompileResult
        from repro.lms.ir import Block, Jump
        from repro.pipeline.passes import PassManager

        bad = Block(0)
        bad.terminator = Jump(99)            # corrupted CFG
        result = CompileResult(
            blocks={0: bad}, entry_bid=0, entry_assigns=[], param_names=[],
            metas=[], statics=None, stable_deps=[], warnings=[],
            taint_branch_sinks=[], noalloc_sites=[])
        tel = Telemetry().enable_trace()
        diag = Diagnostics(unit="bad")
        PassManager(CompileOptions(verify_ir=True), telemetry=tel,
                    diagnostics=diag).run(result, "bad", tier=2)
        fails = tel.events("analysis.verify_fail")
        assert fails and fails[0].data["unit"] == "bad"
        assert any("missing block" in e for e in fails[0].data["errors"])
        assert any(d.kind == "verify" for d in diag.errors())

    def test_trace_jsonl_valid(self, tmp_path):
        j = load(SRC)
        j.telemetry.enable_trace()
        j.compile_function("Main", "work")
        path = tmp_path / "out.jsonl"
        n = j.telemetry.export_jsonl(str(path))
        assert n == len(j.telemetry.events())
        with open(path) as f:
            for line in f:
                event = json.loads(line)
                assert "kind" in event and "seq" in event and "ts" in event


class TestCli:
    def run_cli(self, tmp_path, *argv):
        import contextlib
        import sys
        from repro.__main__ import main
        program = tmp_path / "prog.mj"
        program.write_text(SRC)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            rc = main([argv[0], str(program)] + list(argv[1:]))
        return rc, out.getvalue(), err.getvalue()

    def test_jit_stats_flag(self, tmp_path):
        rc, out, err = self.run_cli(tmp_path, "jit", "work", "5",
                                    "--jit-stats")
        assert rc == 0
        assert out.strip() == "10"
        stats = json.loads(err[err.index("{"):])
        assert stats["compiles"] == 1

    def test_trace_jit_flag(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc, out, err = self.run_cli(tmp_path, "jit", "work", "5",
                                    "--trace-jit", str(trace))
        assert rc == 0
        events = load_jsonl(str(trace))
        assert any(e.kind == "compile.end" for e in events)

    def test_run_subcommand_flags(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc, out, err = self.run_cli(tmp_path, "run", "work", "4",
                                    "--jit-stats", "--trace-jit", str(trace))
        assert rc == 0
        assert out.strip() == "6"
        assert '"interp_invocations"' in err

"""Class, method, and field metadata for MiniJVM code.

A :class:`ClassFile` is the unit the linker loads; it corresponds to a JVM
``.class`` file. Fields can be declared ``val`` (assign-once, like Java
``final``) — the optimizer folds reads of ``val`` fields on static objects,
exactly like the paper's ``field.isFinal`` shortcut (section 2.2).
"""

from __future__ import annotations


class FieldInfo:
    """A declared field. ``is_val`` marks assign-once (final) fields."""

    __slots__ = ("name", "is_val")

    def __init__(self, name, is_val=False):
        self.name = name
        self.is_val = is_val

    def __repr__(self):
        return "FieldInfo(%r, is_val=%r)" % (self.name, self.is_val)


class MethodInfo:
    """A method: bytecode, parameter count, and local-slot count.

    For instance methods slot 0 holds ``this`` and parameters follow; for
    static methods parameters start at slot 0. ``num_locals`` covers
    parameters plus compiler-allocated temporaries.
    """

    def __init__(self, name, num_params, code, is_static=False,
                 num_locals=None, class_name=None):
        self.name = name
        self.num_params = num_params      # excluding the implicit ``this``
        self.code = list(code)
        self.is_static = is_static
        self.class_name = class_name      # set when attached to a ClassFile
        if num_locals is None:
            num_locals = self._infer_num_locals()
        self.num_locals = num_locals

    def _infer_num_locals(self):
        from repro.bytecode.opcodes import Op
        n = self.num_params + (0 if self.is_static else 1)
        for ins in self.code:
            if ins.op in (Op.LOAD, Op.STORE):
                n = max(n, ins.arg + 1)
        return n

    @property
    def qualified_name(self):
        return "%s.%s" % (self.class_name or "?", self.name)

    def frame_slots(self):
        """Total frame slots: locals plus a conservative operand-stack bound."""
        return self.num_locals + max_stack(self.code)

    def __repr__(self):
        return "MethodInfo(%s, params=%d, %d instrs)" % (
            self.qualified_name, self.num_params, len(self.code))


def max_stack(code):
    """Conservative operand stack bound via a forward scan with branch joins."""
    from repro.bytecode.opcodes import Op
    depth_at = {0: 0} if code else {}
    worklist = [0]
    best = 0
    while worklist:
        i = worklist.pop()
        d = depth_at[i]
        while i < len(code):
            ins = code[i]
            pops, pushes = ins.stack_effect()
            d = d - pops + pushes
            best = max(best, d)
            if ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
                break
            if ins.op is Op.JUMP:
                tgt = ins.arg
                if depth_at.get(tgt, -1) < d:
                    depth_at[tgt] = max(depth_at.get(tgt, 0), d)
                    worklist.append(tgt)
                break
            if ins.op in (Op.JIF_TRUE, Op.JIF_FALSE):
                tgt = ins.arg
                if tgt not in depth_at or depth_at[tgt] < d:
                    depth_at[tgt] = max(depth_at.get(tgt, 0), d)
                    worklist.append(tgt)
            i += 1
            if i in depth_at and depth_at[i] >= d:
                break
            depth_at[i] = max(depth_at.get(i, 0), d)
    return best


class ClassFile:
    """A MiniJVM class: name, superclass, fields, and methods.

    ``is_closure`` marks classes synthesized by the MiniJ compiler for
    lambdas (captured variables become ``val`` fields and the body becomes
    the ``apply`` method), mirroring how Scala closures appear in JVM
    bytecode.
    """

    def __init__(self, name, super_name=None, is_closure=False,
                 source_name=None):
        self.name = name
        self.super_name = super_name
        self.is_closure = is_closure
        self.source_name = source_name
        self.fields = {}      # name -> FieldInfo
        self.methods = {}     # name -> MethodInfo

    def add_field(self, name, is_val=False):
        if name in self.fields:
            raise ValueError("duplicate field %s.%s" % (self.name, name))
        self.fields[name] = FieldInfo(name, is_val=is_val)
        return self.fields[name]

    def add_method(self, method):
        if method.name in self.methods:
            raise ValueError("duplicate method %s.%s" % (self.name, method.name))
        method.class_name = self.name
        self.methods[method.name] = method
        return method

    def __repr__(self):
        return "ClassFile(%r, %d fields, %d methods)" % (
            self.name, len(self.fields), len(self.methods))

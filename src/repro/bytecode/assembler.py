"""Textual MiniJVM assembler.

Grammar (line oriented; ``#`` starts a comment)::

    class Point [extends Base]
      field x
      val field y
      method init/2            # name/num_params; 'static method' for statics
        load 0
        load 1
        putfield x
        ret
      end
    end

Operands: ints, floats, ``"strings"``, ``true``/``false``/``null``, label
names (for jumps; define with ``name:`` on its own line), field/class names,
and ``name argc`` / ``class name argc`` for invokes.
"""

from __future__ import annotations

import re

from repro.bytecode.classfile import ClassFile, MethodInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.errors import AssemblerError

_OPS_BY_NAME = {op.name.lower(): op for op in Op}

_TOKEN = re.compile(r'"(?:[^"\\]|\\.)*"|\S+')


def _parse_literal(tok):
    if tok.startswith('"'):
        return tok[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    if tok == "true":
        return True
    if tok == "false":
        return False
    if tok == "null":
        return None
    try:
        return int(tok)
    except ValueError:
        pass
    try:
        return float(tok)
    except ValueError:
        raise AssemblerError("bad literal: %r" % tok)


def assemble(source):
    """Assemble ``source`` text into a list of :class:`ClassFile`."""
    classes = []
    cls = None
    meth_lines = None
    meth_header = None

    for lineno, raw in enumerate(source.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        toks = _TOKEN.findall(line)
        head = toks[0]

        if meth_lines is not None:
            if head == "end":
                cls.add_method(_assemble_method(meth_header, meth_lines))
                meth_lines = None
            else:
                meth_lines.append((lineno, toks))
            continue

        if head == "class":
            if cls is not None:
                raise AssemblerError("line %d: nested class" % lineno)
            super_name = None
            if len(toks) >= 4 and toks[2] == "extends":
                super_name = toks[3]
            cls = ClassFile(toks[1], super_name=super_name)
        elif head == "end":
            if cls is None:
                raise AssemblerError("line %d: stray end" % lineno)
            classes.append(cls)
            cls = None
        elif head == "field":
            cls.add_field(toks[1])
        elif head == "val" and len(toks) >= 3 and toks[1] == "field":
            cls.add_field(toks[2], is_val=True)
        elif head in ("method", "static"):
            is_static = head == "static"
            name_tok = toks[2] if is_static else toks[1]
            if "/" not in name_tok:
                raise AssemblerError("line %d: expected name/nparams" % lineno)
            name, nparams = name_tok.rsplit("/", 1)
            meth_header = (name, int(nparams), is_static)
            meth_lines = []
        else:
            raise AssemblerError("line %d: unexpected %r" % (lineno, head))

    if cls is not None or meth_lines is not None:
        raise AssemblerError("unexpected end of input (missing 'end')")
    return classes


def _assemble_method(header, lines):
    name, nparams, is_static = header
    labels = {}
    # First pass: find label definitions, count real instructions.
    idx = 0
    for lineno, toks in lines:
        if len(toks) == 1 and toks[0].endswith(":"):
            lbl = toks[0][:-1]
            if lbl in labels:
                raise AssemblerError("line %d: duplicate label %s" % (lineno, lbl))
            labels[lbl] = idx
        else:
            idx += 1

    code = []
    for lineno, toks in lines:
        if len(toks) == 1 and toks[0].endswith(":"):
            continue
        opname = toks[0].lower()
        op = _OPS_BY_NAME.get(opname)
        if op is None:
            raise AssemblerError("line %d: unknown opcode %r" % (lineno, toks[0]))
        args = toks[1:]
        try:
            arg = _decode_operand(op, args, labels)
        except AssemblerError as exc:
            raise AssemblerError("line %d: %s" % (lineno, exc))
        code.append(Instr(op, arg, line=lineno))
    return MethodInfo(name, nparams, code, is_static=is_static)


def _decode_operand(op, args, labels):
    if op is Op.CONST:
        if not args:
            raise AssemblerError("const needs a literal")
        return _parse_literal(args[0])
    if op in (Op.LOAD, Op.STORE, Op.ARRAY_LIT):
        return int(args[0])
    if op in (Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE):
        tgt = args[0]
        if tgt not in labels:
            raise AssemblerError("unknown label %r" % tgt)
        return labels[tgt]
    if op in (Op.NEW, Op.GETFIELD, Op.PUTFIELD, Op.INSTANCEOF):
        return args[0]
    if op is Op.INVOKE:
        return (args[0], int(args[1]))
    if op is Op.INVOKE_STATIC:
        return (args[0], args[1], int(args[2]))
    if args:
        raise AssemblerError("%s takes no operand" % op.name)
    return None

"""Code caching and on-demand compilation (paper 3.1: calcJIT/calcHOT)."""

from repro import CodeCache, make_hot, make_jit
from tests.conftest import load

CALC_SRC = '''
    def calc(x, y) {
      var acc = 0;
      var i = 0;
      while (i < x) { acc = acc + y + i; i = i + 1; }
      return acc;
    }
'''


def expected_calc(x, y):
    return sum(y + i for i in range(x))


class TestCodeCache:
    def test_hit_miss_counting(self):
        c = CodeCache()
        assert c.get("a") is None
        c.put("a", "compiled-a")
        assert c.get("a") == "compiled-a"
        assert c.misses == 1 and c.hits == 1

    def test_get_or_else_update(self):
        c = CodeCache()
        calls = []
        c.get_or_else_update("k", lambda: calls.append(1) or "v")
        c.get_or_else_update("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_lru_eviction(self):
        evicted = []
        c = CodeCache(capacity=2, on_evict=lambda k, v: evicted.append(k))
        c.put(1, "a")
        c.put(2, "b")
        c.get(1)            # 1 now most recent
        c.put(3, "c")       # evicts 2
        assert evicted == [2]
        assert 1 in c and 3 in c and 2 not in c


class TestMakeJit:
    def test_specializes_per_first_argument(self):
        j = load(CALC_SRC)
        calc_jit = make_jit(j, "Main", "calc")
        assert calc_jit(5, 10) == expected_calc(5, 10)
        assert calc_jit(5, 20) == expected_calc(5, 20)
        assert calc_jit(3, 10) == expected_calc(3, 10)
        assert len(calc_jit.cache) == 2          # x=5 and x=3 variants
        assert calc_jit.cache.hits == 1          # second x=5 call

    def test_specialized_variant_embeds_constant(self):
        j = load(CALC_SRC)
        calc_jit = make_jit(j, "Main", "calc")
        calc_jit(4, 1)
        compiled = calc_jit.cache.get(4)
        # x=4 is a compile-time constant: the loop fully unrolls or at
        # least the bound is inlined.
        assert "4" in compiled.source

    def test_custom_eviction_policy(self):
        j = load(CALC_SRC)
        evicted = []
        cache = CodeCache(capacity=1, on_evict=lambda k, v: evicted.append(k))
        calc_jit = make_jit(j, "Main", "calc", cache=cache)
        calc_jit(1, 1)
        calc_jit(2, 1)
        assert evicted == [1]


class TestMakeHot:
    def test_interprets_until_threshold(self):
        j = load(CALC_SRC)
        calc_hot = make_hot(j, "Main", "calc", threshold=2)
        assert calc_hot(5, 1) == expected_calc(5, 1)
        assert len(calc_hot.cache) == 0          # still cold
        assert calc_hot(5, 2) == expected_calc(5, 2)
        assert len(calc_hot.cache) == 0          # hits threshold next call
        assert calc_hot(5, 3) == expected_calc(5, 3)
        assert len(calc_hot.cache) == 1          # compiled now

    def test_cold_values_never_compiled(self):
        j = load(CALC_SRC)
        calc_hot = make_hot(j, "Main", "calc", threshold=10)
        for y in range(5):
            calc_hot(7, y)
        assert len(calc_hot.cache) == 0

    def test_compiled_results_match_interpreted(self):
        j = load(CALC_SRC)
        calc_hot = make_hot(j, "Main", "calc", threshold=1)
        results = [calc_hot(3, y) for y in range(4)]
        assert results == [expected_calc(3, y) for y in range(4)]


class TestMakeHotBackground:
    def _drain(self, calc_hot, timeout=5.0):
        import time
        deadline = time.monotonic() + timeout
        while calc_hot.in_flight and time.monotonic() < deadline:
            time.sleep(0.005)
        assert not calc_hot.in_flight, "background compile never finished"

    def test_background_compiles_while_interpreting(self):
        j = load(CALC_SRC)
        calc_hot = make_hot(j, "Main", "calc", threshold=1,
                            background=True)
        assert calc_hot(4, 1) == expected_calc(4, 1)   # cold: interpret
        assert calc_hot(4, 2) == expected_calc(4, 2)   # hot: kicks compile
        self._drain(calc_hot)
        assert len(calc_hot.cache) == 1
        assert calc_hot(4, 3) == expected_calc(4, 3)   # now compiled

    def test_concurrent_threshold_crossing_compiles_once(self):
        """Regression: the background compile task must run exactly once
        per key even when many callers cross the threshold concurrently
        (the in-flight set is what prevents duplicate tasks)."""
        import threading

        j = load(CALC_SRC)
        gate = threading.Event()
        compile_calls = []
        real_compile = j.compile_closure

        def gated_compile(closure, options=None):
            compile_calls.append(1)
            gate.wait(5)
            return real_compile(closure, options=options)

        j.compile_closure = gated_compile
        calc_hot = make_hot(j, "Main", "calc", threshold=0,
                            background=True)

        threads = [threading.Thread(target=calc_hot, args=(5, k))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        gate.set()
        self._drain(calc_hot)
        assert len(compile_calls) == 1
        assert len(calc_hot.cache) == 1
        assert calc_hot(5, 1) == expected_calc(5, 1)

    def test_eviction_rerace_does_not_duplicate_inflight_task(self):
        """An LRU eviction re-heating a key while its compile task is
        still in flight must not start a second task for it."""
        import threading

        from repro import CodeCache

        j = load(CALC_SRC)
        gate = threading.Event()
        compile_calls = []
        real_compile = j.compile_closure

        def gated_compile(closure, options=None):
            compile_calls.append(closure.fields["x"])
            gate.wait(5)
            return real_compile(closure, options=options)

        j.compile_closure = gated_compile
        cache = CodeCache(capacity=1)
        calc_hot = make_hot(j, "Main", "calc", threshold=0, cache=cache,
                            background=True)
        calc_hot(5, 1)          # task for 5 starts, blocked on the gate
        calc_hot(6, 1)          # task for 6 starts too
        calc_hot(5, 2)          # 5 is still in flight: must not re-spawn
        gate.set()
        self._drain(calc_hot)
        # 5's landing may have been evicted by 6 (capacity 1), but each
        # key compiled exactly once while hot-and-in-flight.
        assert sorted(compile_calls) == [5, 6]
        assert calc_hot(5, 3) == expected_calc(5, 3)


class TestInvalidation:
    def test_invalidate_all(self):
        j = load(CALC_SRC)
        calc_jit = make_jit(j, "Main", "calc")
        calc_jit(2, 2)
        compiled = calc_jit.cache.get(2)
        calc_jit.cache.invalidate_all()
        assert not compiled.valid
        # A fresh call recompiles a new variant.
        assert calc_jit(2, 2) == expected_calc(2, 2)


class TestCacheTelemetry:
    def test_make_jit_counts_hits_and_misses(self):
        j = load(CALC_SRC)
        m = j.telemetry.metrics
        calc_jit = make_jit(j, "Main", "calc")
        calc_jit(5, 10)                 # miss -> compile
        calc_jit(5, 20)                 # hit
        calc_jit(3, 10)                 # miss -> compile
        assert m.get("cache.jit_cache.misses") == 2
        assert m.get("cache.jit_cache.hits") == 1
        # Aggregated view via Lancet.stats(); the closure compilations
        # themselves are deliberately uncached, so compiles == misses.
        stats = j.stats()
        assert stats["caches"]["jit_cache"]["hits"] == 1
        assert stats["caches"]["jit_cache"]["misses"] == 2
        assert stats["compiles"] == 2

    def test_eviction_and_flush_counted(self):
        j = load(CALC_SRC)
        m = j.telemetry.metrics
        cache = CodeCache(capacity=1, telemetry=j.telemetry,
                          name="jit_cache")
        calc_jit = make_jit(j, "Main", "calc", cache=cache)
        calc_jit(1, 1)
        calc_jit(2, 1)                  # evicts variant 1
        assert m.get("cache.jit_cache.evictions") == 1
        cache.invalidate_all()
        assert m.get("cache.flushes") == 1

    def test_cache_events_traced(self):
        j = load(CALC_SRC)
        j.telemetry.enable_trace()
        calc_jit = make_jit(j, "Main", "calc")
        calc_jit(5, 1)
        calc_jit(5, 2)
        kinds = [e.kind for e in j.telemetry.events("cache.")]
        assert "cache.miss" in kinds and "cache.hit" in kinds

    def test_unit_cache_single_compilation(self):
        """Regression: two compile_function calls for the same (method,
        specialization) must compile exactly once — the second is a cache
        hit, not a recompilation."""
        j = load(CALC_SRC)
        m = j.telemetry.metrics
        first = j.compile_function("Main", "calc")
        second = j.compile_function("Main", "calc")
        assert first is second
        assert m.get("compiles") == 1
        assert m.get("cache.unit_cache.hits") == 1
        assert m.get("cache.unit_cache.misses") == 1

    def test_unit_cache_disabled_recompiles(self):
        from repro import CompileOptions
        j = load(CALC_SRC)
        opts = CompileOptions(unit_cache=False)
        first = j.compile_function("Main", "calc", options=opts)
        second = j.compile_function("Main", "calc", options=opts)
        assert first is not second
        assert j.telemetry.metrics.get("compiles") == 2


class TestThreadSafety:
    """Regression tests for the thread-safe cache: background compile
    workers mutate the cache concurrently with the hot path."""

    def test_concurrent_get_or_else_update_single_flight(self):
        import threading
        import time

        c = CodeCache()
        compiles = {k: [] for k in range(4)}
        results = []
        start = threading.Barrier(16)

        def compile_for(k):
            compiles[k].append(threading.get_ident())
            time.sleep(0.01)            # widen the race window
            return "code-%d" % k

        def worker(k):
            start.wait()
            results.append((k, c.get_or_else_update(
                k, lambda: compile_for(k))))

        threads = [threading.Thread(target=worker, args=(k % 4,))
                   for k in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one compile per key; every caller saw that one value.
        for k in range(4):
            assert len(compiles[k]) == 1, compiles
        for k, value in results:
            assert value == "code-%d" % k
        assert c.misses == 4
        assert c.hits == 12

    def test_failing_leader_releases_waiters(self):
        import threading

        c = CodeCache()
        gate = threading.Event()
        outcomes = []

        def bad():
            gate.wait(5.0)
            raise RuntimeError("compiler exploded")

        def leader():
            try:
                c.get_or_else_update("k", bad)
            except RuntimeError as e:
                outcomes.append(("leader", str(e)))

        t = threading.Thread(target=leader)
        t.start()
        while "k" not in c._pending:      # leader inside the compile
            pass
        follower = threading.Thread(
            target=lambda: outcomes.append(
                ("follower", c.get_or_else_update("k", lambda: "retry"))))
        follower.start()
        gate.set()
        t.join()
        follower.join()
        # Leader propagated its error; the follower retried and won.
        assert ("leader", "compiler exploded") in outcomes
        assert ("follower", "retry") in outcomes


class TestEvictionInFlightInterplay:
    """An evicted/removed/flushed key must not be resurrected by a
    background compile that started before the eviction (the result is
    stale: it may bake in state the eviction was reacting to)."""

    def test_put_if_discards_after_remove(self):
        c = CodeCache()
        c.put("k", "v1")
        gen = c.generation("k")
        c.remove("k")                     # in-flight compile now stale
        assert c.put_if("k", "stale", gen) is None
        assert "k" not in c
        assert c.stale_discards == 1
        # A compile started *after* the removal lands fine.
        assert c.put_if("k", "fresh", c.generation("k")) == "fresh"
        assert c.peek("k") == "fresh"

    def test_put_if_discards_after_capacity_eviction(self):
        c = CodeCache(capacity=1)
        c.put("a", "va")
        gen = c.generation("a")
        c.put("b", "vb")                  # evicts a, bumps its generation
        assert c.put_if("a", "stale-a", gen) is None
        assert "a" not in c

    def test_put_if_discards_after_flush(self):
        class FakeCompiled:
            def invalidate(self, reason):
                self.reason = reason

        c = CodeCache()
        v = FakeCompiled()
        c.put("k", v)
        gen = c.generation("k")
        c.invalidate_all()
        assert v.reason == "cache flush"
        assert c.put_if("k", FakeCompiled(), gen) is None
        assert len(c) == 0

    def test_make_hot_background_result_discarded_after_eviction(self):
        """End-to-end: a hot value's background compile completes after
        the cache evicted (capacity pressure) that value's key — the
        stale CompiledFunction must not be re-inserted."""
        import threading

        j = load(CALC_SRC)
        release = threading.Event()
        cache = CodeCache(capacity=8)
        orig = j.compile_closure

        def slow_compile(*a, **kw):
            release.wait(5.0)
            return orig(*a, **kw)

        j.compile_closure = slow_compile
        calc_hot = make_hot(j, "Main", "calc", threshold=1,
                            cache=cache, background=True)
        calc_hot(5, 1)
        calc_hot(5, 2)                    # crosses threshold -> spawn
        while not calc_hot.in_flight:
            pass
        workers = list(calc_hot.pending.values())
        cache.remove(5)                   # evicted while compiling
        release.set()
        for t in workers:
            t.join(5.0)
        while calc_hot.in_flight:         # _finish runs after put_if
            pass
        assert 5 not in cache             # stale result discarded
        assert cache.stale_discards == 1
        j.compile_closure = orig
        assert calc_hot(5, 3) == expected_calc(5, 3)

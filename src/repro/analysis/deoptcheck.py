"""Deopt-state verifier: static checks on speculation side-exit state.

Every guard, ``slowpath``/``fastpath`` site, reified continuation, and
stitched trace bridge carries a :class:`~repro.compiler.deopt.DeoptMeta`
describing the interpreter state to rebuild if the speculation fails.
PR 6's fuzzer-found soundness bug (a stitched bridge writing a loop-header
slot whose block parameter the optimizer had pruned) lived exactly in
that state map.  This pass makes the whole class a *static* diagnostic
with bytecode provenance instead of a fuzzing lottery:

* every ``Sym`` in a site's live set must be **defined on every path**
  to the site (forward must-availability, the same relation the IR
  verifier uses for ordinary operands);
* every frame template's ``("live", i)`` indices must be in range of
  the site's live set, and virtual-object templates must resolve
  recursively;
* every interpreter local slot that is **live at the frame's resume
  bci** (per bytecode liveness) must have a state template, and no slot
  may map to a pruned loop-header parameter — the PR 6 bug class, now
  reported as ``"live slot N of M at bci B maps to pruned header param
  p1_N"``;
* :func:`check_bridge_stitch` runs the same invariant at trace-stitch
  time, before the bad back edge is ever built.

Run by the PassManager at every validation checkpoint when
``CompileOptions.verify_deopt`` is set; findings raise
:class:`~repro.errors.DeoptStateError` in enforce mode and become
``deoptcheck`` diagnostics in collect mode.
"""

from __future__ import annotations

import re

from repro.analysis.cfg import predecessors, reverse_postorder
from repro.analysis.liveness import live_at
from repro.compiler.deopt import VirtualArray, VirtualObject
from repro.lms.ir import Deopt, OsrCompile
from repro.lms.rep import Sym

#: Loop-header / merge-block parameter names as staging and the trace
#: recorder mint them (``p<block>_<slot>``).
_HEADER_PARAM = re.compile(r"^p\d+_\d+$")


def _available_in(blocks, entry_id, params):
    """Forward must-analysis: ``{bid: names defined on every path in}``
    (availability == dominance for the block-argument SSA form)."""
    preds = predecessors(blocks)
    order = reverse_postorder(blocks, entry_id)
    root = frozenset(params)
    avail_out = {}

    def block_out(bid, avail_in):
        defs = set(avail_in)
        defs.update(blocks[bid].params)
        defs.update(s.sym.name for s in blocks[bid].stmts)
        return frozenset(defs)

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == entry_id:
                avail_in = root
            else:
                pred_outs = [avail_out[p] for p in preds[bid]
                             if p in avail_out]
                if not pred_outs:
                    continue
                avail_in = frozenset.intersection(*pred_outs)
            out = block_out(bid, avail_in)
            if avail_out.get(bid) != out:
                avail_out[bid] = out
                changed = True

    avail_in = {}
    for bid in order:
        if bid == entry_id:
            avail_in[bid] = root
        else:
            pred_outs = [avail_out[p] for p in preds[bid] if p in avail_out]
            avail_in[bid] = frozenset.intersection(*pred_outs) \
                if pred_outs else frozenset()
    return avail_in


def _classify(rep, defined, all_defs):
    """Why is ``rep`` bad at this site?  Returns a message suffix or
    None when the value is fine."""
    if not isinstance(rep, Sym):
        return None
    if rep.name in defined:
        return None
    if rep.name not in all_defs and _HEADER_PARAM.match(rep.name):
        return "maps to pruned header param %s" % rep.name
    return "uses %s, which is not defined on every path to the site" \
        % rep.name


def check_deopt_state(result, unit=""):
    """Verify every deopt site of ``result`` against bytecode-level
    liveness; returns a list of finding strings with bci provenance."""
    blocks, entry = result.blocks, result.entry_bid
    metas = result.metas
    findings = []
    avail_in = _available_in(blocks, entry, result.param_names)
    all_defs = set(result.param_names)
    for block in blocks.values():
        all_defs.update(block.params)
        all_defs.update(s.sym.name for s in block.stmts)

    def check_template(template, lives, defined, where, slot_desc):
        if not isinstance(template, tuple) or not template:
            findings.append("%s: %s has malformed state template %r"
                            % (where, slot_desc, template))
            return
        kind = template[0]
        if kind == "live":
            idx = template[1]
            if not isinstance(idx, int) or not 0 <= idx < len(lives):
                findings.append(
                    "%s: %s references live value #%r (site has %d)"
                    % (where, slot_desc, idx, len(lives)))
                return
            why = _classify(lives[idx], defined, all_defs)
            if why is not None:
                findings.append("%s: %s %s" % (where, slot_desc, why))
        elif kind in ("const", "static"):
            pass
        elif kind == "virtual":
            vobj = template[1]
            if isinstance(vobj, VirtualArray):
                for i, t in enumerate(vobj.elems):
                    check_template(t, lives, defined, where,
                                   "%s[%d]" % (slot_desc, i))
            elif isinstance(vobj, VirtualObject):
                for fname, t in vobj.fields.items():
                    check_template(t, lives, defined, where,
                                   "%s.%s" % (slot_desc, fname))
            else:
                findings.append("%s: %s is a virtual of unknown shape %r"
                                % (where, slot_desc, vobj))
        else:
            findings.append("%s: %s has unknown template kind %r"
                            % (where, slot_desc, kind))

    def check_site(bid, what, meta_id, lives, defined, full=True):
        if not isinstance(meta_id, int) or not 0 <= meta_id < len(metas):
            findings.append("B%d: %s references missing deopt meta %r"
                            % (bid, what, meta_id))
            return
        meta = metas[meta_id]
        leaf = meta.frames[-1] if meta.frames else None
        prov = ("%s bci %d" % (leaf.method.qualified_name, leaf.bci)
                if leaf is not None else "<no frames>")
        site = "B%d %s (meta #%d, %s)" % (bid, what, meta_id, prov)
        for k, rep in enumerate(lives):
            why = _classify(rep, defined, all_defs)
            if why is not None:
                findings.append("%s: live[%d] %s" % (site, k, why))
        if not full:
            return
        for ft in meta.frames:
            where = "%s: frame %s at bci %d" \
                % (site, ft.method.qualified_name, ft.bci)
            for slot in sorted(live_at(ft.method, ft.bci)):
                if slot >= len(ft.locals_t):
                    findings.append(
                        "%s: live slot %d has no state template"
                        % (where, slot))
                    continue
                check_template(ft.locals_t[slot], lives, defined, where,
                               "live slot %d" % slot)
            for i, t in enumerate(ft.stack_t):
                check_template(t, lives, defined, where, "stack[%d]" % i)

    for bid in sorted(blocks):
        block = blocks[bid]
        defined = set(avail_in.get(bid, ())) | set(block.params)
        for stmt in block.stmts:
            if stmt.op in ("guard", "guard_not") and len(stmt.args) >= 2:
                check_site(bid, stmt.op, stmt.args[1], stmt.args[2:],
                           defined)
            elif stmt.op == "make_cont" and stmt.args:
                # A continuation's frames resume with runtime-supplied
                # values; check live indices but not slot coverage.
                check_site(bid, "make_cont", stmt.args[0], stmt.args[1:],
                           defined, full=False)
            defined.add(stmt.sym.name)
        term = block.terminator
        if isinstance(term, (Deopt, OsrCompile)):
            check_site(bid, type(term).__name__.lower(), term.meta_id,
                       term.lives, defined)
    return findings


def check_bridge_stitch(result, live_slots, start_locals, end_locals,
                        method, header_bci, header_bid=1):
    """The PR 6 bug class at its source, before the bad edge exists.

    A finished bridge recording is about to be stitched back to the
    trace's loop header.  The optimizer may have pruned loop-invariant
    header params; a bridge that *writes* such a slot (``end_locals``
    differs from ``start_locals``) has nowhere to carry the new value on
    the pruned back edge — the stitched loop would silently re-run from
    the entry value forever.  Returns finding strings with bytecode
    provenance (also surfaced through telemetry by the stitcher, which
    refuses the stitch)."""
    header = result.blocks.get(header_bid)
    if header is None:
        return ["bridge stitch: trace has no header block B%d"
                % header_bid]
    retained = set(header.params)
    findings = []
    for slot in live_slots:
        if "p%d_%d" % (header_bid, slot) in retained:
            continue
        if end_locals[slot] != start_locals[slot]:
            findings.append(
                "bridge writes pruned invariant slot %d (local %d of %s "
                "at bci %d): the stitched back edge cannot carry the new "
                "value" % (slot, slot, method.qualified_name, header_bci))
    return findings

"""Disassembler: ClassFile / MethodInfo back to readable text.

Round-trips with :mod:`repro.bytecode.assembler` (modulo label names, which
are regenerated as ``L<index>``).
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op, BRANCH_OPS


def _fmt_literal(v):
    if v is True:
        return "true"
    if v is False:
        return "false"
    if v is None:
        return "null"
    if isinstance(v, str):
        return '"%s"' % v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return repr(v)


def disassemble_method(method, indent="    "):
    """Return assembler text for one method."""
    targets = sorted({ins.arg for ins in method.code if ins.op in BRANCH_OPS})
    label_of = {t: "L%d" % t for t in targets}
    head = "%smethod %s/%d" % ("static " if method.is_static else "",
                               method.name, method.num_params)
    lines = [head]
    for i, ins in enumerate(method.code):
        if i in label_of:
            lines.append("%s%s:" % (indent, label_of[i]))
        lines.append(indent * 2 + _fmt_instr(ins, label_of))
    lines.append("end")
    return "\n".join(lines)


def _fmt_instr(ins, label_of):
    name = ins.op.name.lower()
    if ins.op is Op.CONST:
        return "%s %s" % (name, _fmt_literal(ins.arg))
    if ins.op in BRANCH_OPS:
        return "%s %s" % (name, label_of[ins.arg])
    if ins.op is Op.INVOKE:
        return "%s %s %d" % (name, ins.arg[0], ins.arg[1])
    if ins.op is Op.INVOKE_STATIC:
        return "%s %s %s %d" % (name, ins.arg[0], ins.arg[1], ins.arg[2])
    if ins.arg is None:
        return name
    return "%s %s" % (name, ins.arg)


def disassemble_class(cls):
    """Return assembler text for a whole class."""
    header = "class %s" % cls.name
    if cls.super_name:
        header += " extends %s" % cls.super_name
    lines = [header]
    for f in cls.fields.values():
        lines.append("  %sfield %s" % ("val " if f.is_val else "", f.name))
    for m in cls.methods.values():
        body = disassemble_method(m)
        lines.extend("  " + ln for ln in body.splitlines())
    lines.append("end")
    return "\n".join(lines)

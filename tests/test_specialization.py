"""Program specialization (paper 3.1): freeze, unroll, ntimes,
specialization against live heap objects."""

import pytest

from repro.errors import FreezeError, UnrollError
from tests.conftest import load


class TestClosureSpecialization:
    def test_val_field_folds(self):
        j = load('''
            class Adder { val k; def init(k) { this.k = k; } }
            def make(k) {
              var a = new Adder(k);
              return Lancet.compile(fun(x) => x + a.k);
            }
        ''')
        f = j.vm.call("Main", "make", [42])
        assert f(8) == 50
        assert "42" in f.source
        assert "getfield" not in f.source and "fields[" not in f.source

    def test_var_field_stays_dynamic(self):
        j = load('''
            class Cell { var v; def init(v) { this.v = v; } }
            def make() {
              var c = new Cell(1);
              return [Lancet.compile(fun(x) => x + c.v), c];
            }
        ''')
        f, cell = j.vm.call("Main", "make")
        assert f(10) == 11
        cell.put("v", 5)
        assert f(10) == 15   # mutable state read at runtime

    def test_two_specializations_coexist(self):
        # "multiple versions need to be active at the same time" (paper §1)
        j = load('''
            class Adder { val k; def init(k) { this.k = k; } }
            def make(k) {
              var a = new Adder(k);
              return Lancet.compile(fun(x) => x + a.k);
            }
        ''')
        f1 = j.vm.call("Main", "make", [1])
        f2 = j.vm.call("Main", "make", [100])
        assert f1(0) == 1
        assert f2(0) == 100

    def test_compiled_closure_callable_from_guest(self):
        j = load('''
            def make() { return Lancet.compile(fun(x) => x * 2); }
            def useIt(f, v) { return f(v) + 1; }
        ''')
        f = j.vm.call("Main", "make")
        assert j.vm.call("Main", "useIt", [f, 10]) == 21


class TestFreeze:
    def test_freeze_folds_computation(self):
        j = load('''
            def make() {
              var arr = ["a", "b", "c"];
              return Lancet.compile(fun(s) => Lancet.freeze(indexOf(arr, "c")) + s);
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(10) == 12
        assert "indexOf" not in f.source

    def test_freeze_fails_on_dynamic(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) => Lancet.freeze(x + 1));
            }
        ''')
        with pytest.raises(FreezeError):
            j.vm.call("Main", "make")

    def test_freeze_allows_allocating_natives(self):
        # split() is only foldable through freeze (aliasing would be baked).
        j = load('''
            def make() {
              var line = "x,y,z";
              return Lancet.compile(fun(i) {
                var parts = Lancet.freeze(split(line, ","));
                return parts[i];
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(1) == "y"

    def test_freeze_interpreted_is_identity(self, jit):
        jit.load("def f() { return Lancet.freeze(3 * 4); }")
        assert jit.vm.call("Main", "f") == 12


class TestNtimes:
    def test_unrolls(self):
        j = load('''
            class Box { var v; def init(v) { this.v = v; } }
            def make() {
              return Lancet.compile(fun(x) {
                var b = new Box(x);
                Lancet.ntimes(4, fun(i) { b.v = b.v + i; });
                return b.v;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(10) == 16
        assert "while" not in f.source.replace("while True", "")
        assert "_newinst" not in f.source     # Box sank away

    def test_dynamic_trip_count_rejected(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(n) {
                Lancet.ntimes(n, fun(i) { println(i); });
                return 0;
              });
            }
        ''')
        with pytest.raises(UnrollError):
            j.vm.call("Main", "make")

    def test_interpreted_semantics(self, jit):
        jit.load('''
            def f() {
              var b = [0];
              Lancet.ntimes(3, fun(i) { b[0] = b[0] + i; });
              return b[0];
            }
        ''')
        assert jit.vm.call("Main", "f") == 3

    def test_loopy_through_inlining(self):
        # Paper: `def loopy(x) = ntimes(x) { ... }` unrolled at the call
        # site because freeze sees the inlined constant.
        j = load('''
            def loopy(out, n) {
              Lancet.ntimes(n, fun(i) { out[0] = out[0] + 1; });
            }
            def make() {
              return Lancet.compile(fun(x) {
                var out = [x];
                loopy(out, 7);
                return out[0];
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(0) == 7


class TestNaturalUnrolling:
    SRC = '''
        def make(n) {
          return Lancet.compile(fun(x) {
            return Lancet.unrollTopLevel(fun() {
              var acc = [x];
              var i = 0;
              while (i < Lancet.freeze(n)) { acc[0] = acc[0] * 2; i = i + 1; }
              return acc[0];
            });
          });
        }
    '''

    def test_unrolls_static_loop(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make", [5])
        assert f(1) == 32
        # No residual loop: no block parameters / phi assignments.
        assert "p" not in "".join(
            ln for ln in f.source.splitlines() if " = p" in ln)

    def test_without_scope_loop_stays(self):
        j = load('''
            def make(n) {
              return Lancet.compile(fun(x) {
                var acc = x;
                var i = 0;
                while (i < n) { acc = acc * 2; i = i + 1; }
                return acc;
              });
            }
        ''')
        f = j.vm.call("Main", "make", [5])
        assert f(1) == 32
        assert "p" in f.source   # merge-block params present


class TestUnrollMarker:
    def test_unroll_scope_on_current_frame(self):
        j = load('''
            def make() {
              var xs = [2, 3, 4];
              return Lancet.compile(fun(x) {
                var marked = Lancet.unroll(xs);
                var s = x;
                var i = 0;
                while (i < len(marked)) { s = s + marked[i]; i = i + 1; }
                return s;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(1) == 10
        # Folding reduced the loop to straight-line adds over statics.
        assert "while" not in f.source.replace("while True", "")

"""Speculation-soundness checkers (PR 7): the per-pass translation
validator (repro.analysis.validate), the deopt-state verifier
(repro.analysis.deoptcheck), their PassManager checkpoints, the
unvalidated-pass-off fallback recompile, and the `repro validate` CLI.

The mutation tests inject deliberately broken pass variants and assert
each bug class is caught by exactly the intended checker."""

from __future__ import annotations

import json

import pytest

from repro import CompileOptions, Lancet
from repro.__main__ import main
from repro.analysis.deoptcheck import check_bridge_stitch, check_deopt_state
from repro.analysis.validate import snapshot_ir, validate_pass
from repro.compiler.deopt import DeoptMeta, FrameTemplate
from repro.compiler.stagedinterp import CompileResult
from repro.errors import DeoptStateError, TranslationValidationError
from repro.frontend.compiler import compile_source
from repro.lms.ir import Block, Effect, Jump, Return, Stmt
from repro.lms.rep import ConstRep, Sym
from tests.conftest import load

STORE_SRC = '''
    class Box { var v; def init() { this.v = 0; } }
    def store(b, x) { b.v = x; return b; }
'''

TALK_SRC = '''
    def talk() { println("first"); println("second"); return 0; }
'''

SPEC_SRC = '''
    def spec(x) {
      if (Lancet.speculate(x < 100)) { return x * 2; }
      return 0 - x;
    }
'''


def method_for(source, name, module="Main"):
    classes = compile_source(source, module=module)
    return [c for c in classes if c.name == module][0].methods[name]


def make_result(blocks, entry=0, params=("a1",), metas=()):
    return CompileResult(blocks, entry, [], list(params), list(metas),
                         [], [], [], [], [])


@pytest.fixture
def no_fallback(monkeypatch):
    """Make validation rejects propagate instead of recompiling, so
    tests can assert the exact exception the checkpoint raised."""
    def reraise(self, exc, *args, **kwargs):
        raise exc
    monkeypatch.setattr(Lancet, "_revalidate_fallback", reraise)


def patch_gvn(monkeypatch, mutate):
    """Replace the GVN pass with one that runs the real pass and then
    applies ``mutate(blocks)`` — an injected miscompile."""
    import repro.pipeline.passes as passes
    from repro.pipeline.gvn import global_value_numbering

    def evil(blocks, entry_bid):
        stats = global_value_numbering(blocks, entry_bid)
        mutate(blocks)
        return stats
    monkeypatch.setattr(passes, "global_value_numbering", evil)


class TestMutationCatching:
    """Each injected pass bug is caught by exactly the intended checker."""

    def test_dropped_store_caught_by_validator(self, monkeypatch,
                                               no_fallback):
        def drop_store(blocks):
            for block in blocks.values():
                for i, stmt in enumerate(block.stmts):
                    if stmt.effect is Effect.WRITE and stmt.op == "putfield":
                        del block.stmts[i]
                        return
            raise AssertionError("no store to drop")
        patch_gvn(monkeypatch, drop_store)
        j = load(STORE_SRC)
        with pytest.raises(TranslationValidationError) as exc:
            j.compile_function("Main", "store")
        assert exc.value.pass_name == "gvn"
        assert any("dropped effectful op" in f for f in exc.value.findings)

    def test_reordered_effects_caught_by_validator(self, monkeypatch,
                                                   no_fallback):
        def swap_ios(blocks):
            for block in blocks.values():
                ios = [i for i, s in enumerate(block.stmts)
                       if s.effect is Effect.IO]
                if len(ios) >= 2:
                    a, b = ios[0], ios[1]
                    block.stmts[a], block.stmts[b] = \
                        block.stmts[b], block.stmts[a]
                    return
            raise AssertionError("no IO pair to swap")
        patch_gvn(monkeypatch, swap_ios)
        j = load(TALK_SRC)
        with pytest.raises(TranslationValidationError) as exc:
            j.compile_function("Main", "talk")
        assert exc.value.pass_name == "gvn"
        assert any("reordered" in f for f in exc.value.findings)

    def test_strengthened_guard_caught_by_validator(self, monkeypatch,
                                                    no_fallback):
        def flip_guard(blocks):
            for block in blocks.values():
                for stmt in block.stmts:
                    if stmt.op == "guard":
                        stmt.op = "guard_not"   # test the opposite thing
                        return
            raise AssertionError("no guard to flip")
        patch_gvn(monkeypatch, flip_guard)
        j = load(SPEC_SRC)
        with pytest.raises(TranslationValidationError) as exc:
            j.compile_function("Main", "spec")
        assert exc.value.pass_name == "gvn"
        assert any("introduced or strengthened guard" in f
                   for f in exc.value.findings)

    def test_stale_deopt_slot_caught_by_deoptcheck(self, monkeypatch,
                                                   no_fallback):
        """Remapping a deopt state template to a nonexistent live value
        is invisible to the translation validator (the IR itself is
        untouched) and must be caught by the deopt-state verifier."""
        import repro.pipeline.passes as passes
        state = {"done": False}

        def corrupting_snapshot(result):
            if not state["done"]:
                for meta in result.metas:
                    for ft in meta.frames:
                        for i, t in enumerate(ft.locals_t):
                            if isinstance(t, tuple) and t[0] == "live":
                                locals_t = list(ft.locals_t)
                                locals_t[i] = ("live", 99)
                                ft.locals_t = type(ft.locals_t)(locals_t)
                                state["done"] = True
                                return snapshot_ir(result)
            return snapshot_ir(result)
        monkeypatch.setattr(passes, "snapshot_ir", corrupting_snapshot)
        j = load(SPEC_SRC)
        with pytest.raises(DeoptStateError) as exc:
            j.compile_function("Main", "spec")
        assert state["done"], "mutation never found a live template"
        assert any("references live value #99" in f
                   for f in exc.value.findings)
        # bci provenance on the finding
        assert any("bci" in f for f in exc.value.findings)


class TestFallbackRecompile:
    def test_reject_recompiles_with_pass_off(self, monkeypatch):
        """Without the no_fallback fixture a validation reject recovers:
        the unit recompiles with the blamed pass disabled, the program
        still runs correctly, and telemetry records the reject."""
        def drop_store(blocks):
            for block in blocks.values():
                for i, stmt in enumerate(block.stmts):
                    if stmt.effect is Effect.WRITE and stmt.op == "putfield":
                        del block.stmts[i]
                        return
        patch_gvn(monkeypatch, drop_store)
        j = load(STORE_SRC)
        j.telemetry.enable_trace()
        compiled = j.compile_function("Main", "store")
        box = j.vm.new_object("Box", [])
        assert compiled(box, 42) is box
        assert box.get("v") == 42        # the store actually happened
        rejects = j.telemetry.events("validate.reject")
        assert len(rejects) == 1
        assert rejects[0].data["pass_name"] == "gvn"
        assert "dropped effectful op" in rejects[0].data["error"]


class TestCleanPrograms:
    """Existing programs compile with zero findings under both checkers."""

    SRC = '''
        class Point { var x; var y;
          def init(x, y) { this.x = x; this.y = y; } }
        def work(n) {
          var total = 0;
          var i = 0;
          while (i < n) {
            var p = new Point(i, i * 2);
            total = total + p.x + p.y;
            i = i + 1;
          }
          return total;
        }
    '''

    def test_loop_with_allocs_validates_clean(self):
        j = load(self.SRC)
        compiled = j.compile_function("Main", "work")
        assert compiled(10) == sum(i + i * 2 for i in range(10))
        checks = [s for s in compiled.report.pass_stats
                  if s["pass"].startswith("validate.")]
        assert len(checks) >= 5          # staged baseline + each opt pass
        assert all(s["findings"] == 0 and s["deopt_findings"] == 0
                   for s in checks)

    def test_speculation_validates_clean(self):
        j = load(SPEC_SRC)
        compiled = j.compile_function("Main", "spec")
        assert compiled(5) == 10
        assert all(s["findings"] == 0 for s in compiled.report.pass_stats
                   if s["pass"].startswith("validate."))

    def test_analyze_reports_checkpoints(self):
        j = load(self.SRC)
        diag = j.analyze("Main", "work")
        infos = [d for d in diag.findings
                 if d.kind == "validate" and d.severity == "info"]
        assert infos and "checkpoint" in infos[0].message
        assert "0 finding(s)" in infos[0].message


class TestDeoptCheckUnit:
    """check_deopt_state on hand-built IR."""

    def guarded_result(self, lives, locals_t, method=None, bci=0,
                       params=("a1",)):
        if method is None:
            method = method_for('def f(x) { return x; }', "f")
        meta = DeoptMeta([FrameTemplate(method, bci, tuple(locals_t), ())],
                         reason="test", kind="interpret")
        b0 = Block(0)
        b0.stmts.append(Stmt(Sym("c"), "lt", (Sym("a1"), ConstRep(10)),
                             Effect.PURE))
        b0.stmts.append(Stmt(Sym("g"), "guard",
                             (Sym("c"), 0) + tuple(lives), Effect.GUARD))
        b0.terminator = Return(ConstRep(0))
        return make_result({0: b0}, params=params, metas=[meta])

    def test_sound_site_is_clean(self):
        result = self.guarded_result((Sym("a1"),), [("live", 0)])
        assert check_deopt_state(result) == []

    def test_undefined_live_value(self):
        result = self.guarded_result((Sym("ghost"),), [("live", 0)])
        findings = check_deopt_state(result)
        assert any("ghost" in f and "not defined on every path" in f
                   for f in findings)

    def test_live_index_out_of_range(self):
        result = self.guarded_result((Sym("a1"),), [("live", 3)])
        findings = check_deopt_state(result)
        assert any("references live value #3 (site has 1)" in f
                   for f in findings)

    def test_missing_slot_template(self):
        # slot 0 is live at bci 0 of f(x) but the template list is empty
        result = self.guarded_result((Sym("a1"),), [])
        findings = check_deopt_state(result)
        assert any("live slot 0 has no state template" in f
                   for f in findings)

    def test_findings_carry_bci_provenance(self):
        result = self.guarded_result((Sym("ghost"),), [("live", 0)])
        findings = check_deopt_state(result)
        assert any("Main.f bci 0" in f for f in findings)

    def test_missing_meta(self):
        result = self.guarded_result((Sym("a1"),), [("live", 0)])
        result.metas = []
        findings = check_deopt_state(result)
        assert any("missing deopt meta" in f for f in findings)


class TestStitchedBridgeStatics:
    """The PR 6 bug class — a stitched bridge writing a loop-header slot
    whose block parameter was pruned — is now a *static* diagnostic with
    bytecode provenance, both at stitch time (check_bridge_stitch) and
    on the stitched IR itself (check_deopt_state)."""

    def trace_blocks(self, header_params):
        # B0 prologue -> B1 loop header -> back edge to itself.
        b0 = Block(0)
        b0.terminator = Jump(1, [(p, Sym("a1")) for p in header_params])
        b1 = Block(1, params=list(header_params))
        b1.terminator = Jump(1, [(p, Sym(p)) for p in header_params])
        return {0: b0, 1: b1}

    def test_stitch_refused_with_provenance(self):
        method = method_for('def loop(x) { return x; }', "loop")
        # Slot 1's header param p1_1 was pruned (loop-invariant) but the
        # bridge changed the slot's value: 7 -> 9.
        result = make_result(self.trace_blocks(("p1_0",)), params=("a1",))
        findings = check_bridge_stitch(
            result, live_slots=(0, 1), start_locals=[5, 7],
            end_locals=[5, 9], method=method, header_bci=4)
        assert len(findings) == 1
        assert findings[0].startswith("bridge writes pruned invariant slot 1")
        assert "Main.loop" in findings[0] and "bci 4" in findings[0]

    def test_stitch_allowed_when_slot_retained_or_unchanged(self):
        method = method_for('def loop(x) { return x; }', "loop")
        # Retained param: fine even though the bridge writes it.
        result = make_result(self.trace_blocks(("p1_0", "p1_1")),
                             params=("a1",))
        assert check_bridge_stitch(result, (0, 1), [5, 7], [5, 9],
                                   method, 4) == []
        # Pruned but unchanged: fine.
        result = make_result(self.trace_blocks(("p1_0",)), params=("a1",))
        assert check_bridge_stitch(result, (0, 1), [5, 7], [5, 7],
                                   method, 4) == []

    def test_stitched_ir_with_pruned_slot_reported_statically(self):
        """A stitched trace whose guard still names the pruned header
        param p1_1 in its live set is flagged by check_deopt_state with
        the pruned-param classification and bci provenance."""
        method = method_for('def loop(x) { return x; }', "loop")
        blocks = self.trace_blocks(("p1_0",))
        meta = DeoptMeta([FrameTemplate(method, 0, (("live", 0),), ())],
                         reason="bridge exit", kind="interpret")
        b1 = blocks[1]
        b1.stmts.append(Stmt(Sym("c"), "lt", (Sym("p1_0"), ConstRep(10)),
                             Effect.PURE))
        b1.stmts.append(Stmt(Sym("g"), "guard",
                             (Sym("c"), 0, Sym("p1_1")), Effect.GUARD))
        result = make_result(blocks, params=("a1",), metas=[meta])
        findings = check_deopt_state(result)
        assert any("maps to pruned header param p1_1" in f
                   for f in findings)
        assert any("bci 0" in f for f in findings)


class TestValidatorUnit:
    """validate_pass on hand-built IR mutations."""

    def linear_result(self):
        b0 = Block(0)
        b0.stmts.append(Stmt(Sym("v"), "add", (Sym("a1"), ConstRep(1)),
                             Effect.PURE, {"num": True}))
        b0.stmts.append(Stmt(Sym("w"), "native", ("out", Sym("v")),
                             Effect.IO))
        b0.terminator = Return(Sym("v"))
        return make_result({0: b0})

    def test_identical_ir_validates(self):
        result = self.linear_result()
        before = snapshot_ir(result)
        assert validate_pass("gvn", before, result) == []

    def test_commutative_swap_is_sound(self):
        result = self.linear_result()
        before = snapshot_ir(result)
        stmt = result.blocks[0].stmts[0]
        stmt.args = (ConstRep(1), Sym("a1"))    # add is commutative
        assert validate_pass("gvn", before, result) == []

    def test_changed_return_value_is_caught(self):
        result = self.linear_result()
        before = snapshot_ir(result)
        result.blocks[0].terminator = Return(Sym("a1"))
        findings = validate_pass("gvn", before, result)
        assert any("return value changed" in f for f in findings)

    def test_introduced_effect_is_caught_even_for_deleting_passes(self):
        result = self.linear_result()
        before = snapshot_ir(result)
        result.blocks[0].stmts.append(
            Stmt(Sym("z"), "native", ("extra", Sym("v")), Effect.IO))
        result.blocks[0].terminator = Return(Sym("v"))
        findings = validate_pass("sink", before, result)
        assert any("introduced effectful op" in f for f in findings)

    def test_sink_may_delete_stores(self):
        result = self.linear_result()
        result.blocks[0].stmts.insert(
            1, Stmt(Sym("s"), "putfield",
                    (Sym("v"), "f", ConstRep(0)), Effect.WRITE))
        before = snapshot_ir(result)
        del result.blocks[0].stmts[1]
        assert validate_pass("sink", before, result) == []
        # ... but a structure-preserving pass may not.
        result2 = self.linear_result()
        result2.blocks[0].stmts.insert(
            1, Stmt(Sym("s"), "putfield",
                    (Sym("v"), "f", ConstRep(0)), Effect.WRITE))
        before2 = snapshot_ir(result2)
        del result2.blocks[0].stmts[1]
        findings = validate_pass("licm", before2, result2)
        assert any("dropped effectful op" in f for f in findings)

    def test_rename_is_sound(self):
        result = self.linear_result()
        before = snapshot_ir(result)
        b0 = result.blocks[0]
        b0.stmts[0] = Stmt(Sym("r9"), "add", (Sym("a1"), ConstRep(1)),
                           Effect.PURE, {"num": True})
        b0.stmts[1] = Stmt(Sym("w"), "native", ("out", Sym("r9")),
                           Effect.IO)
        b0.terminator = Return(Sym("r9"))
        assert validate_pass("gvn", before, result) == []


class TestValidateCLI:
    PROGRAM = '''
        def main() { return 41 + 1; }
        def double(x) { return x + x; }
    '''

    @pytest.fixture
    def program(self, tmp_path):
        path = tmp_path / "prog.mj"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_validate_clean_program(self, program, capsys):
        assert main(["validate", program]) == 0
        out = capsys.readouterr().out
        assert "JIT lint report" in out
        assert "validate" in out and "checkpoint" in out

    def test_validate_strict_clean_program(self, program, capsys):
        assert main(["validate", program, "--strict"]) == 0

    def test_validate_json_filters_to_soundness_kinds(self, program,
                                                      capsys):
        assert main(["validate", program, "double", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        kinds = {f["kind"] for f in report["findings"]}
        assert kinds <= {"verify", "validate", "deoptcheck", "compile"}
        assert "validate" in kinds

    def test_analyze_keeps_optimizer_findings(self, program, capsys):
        assert main(["analyze", program, "double", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        kinds = {f["kind"] for f in report["findings"]}
        assert "dce" in kinds            # optimizer info, filtered out above

    def test_strict_fails_on_warning(self, program, capsys, monkeypatch):
        # Force a warning-severity finding through analyze --strict.
        real = Lancet.analyze

        def warn_analyze(self, target, method_name=None, options=None):
            diag = real(self, target, method_name, options=options)
            diag.add("warning", "compile", "synthetic warning")
            return diag
        monkeypatch.setattr(Lancet, "analyze", warn_analyze)
        assert main(["analyze", program, "double"]) == 0
        assert main(["analyze", program, "double", "--strict"]) == 1
        capsys.readouterr()


class TestOptionsPlumbing:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        opts = CompileOptions()
        assert not opts.validate_passes and not opts.verify_deopt
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        opts = CompileOptions()
        assert opts.validate_passes and opts.verify_deopt

    def test_checkers_off_means_no_checkpoints(self):
        j = Lancet(options=CompileOptions(validate_passes=False,
                                          verify_deopt=False))
        j.load(SPEC_SRC)
        compiled = j.compile_function("Main", "spec")
        assert compiled(5) == 10
        assert not any(s["pass"].startswith("validate.")
                       for s in compiled.report.pass_stats)

"""The Backend protocol: emit a unit from post-pipeline IR + metas.

Every code generator — Python (the JIT's "native code"), JavaScript, and
SQL — consumes one canonical optimized :class:`CompileResult` produced
by the PassManager. No backend re-walks or re-cleans blocks itself;
fusion/DCE happen exactly once, upstream.

``get_backend(name)`` resolves a registered backend; the JS and SQL
implementations live with their renderers in :mod:`repro.backends` and
are imported lazily to keep this layer dependency-free.
"""

from __future__ import annotations

import abc
import dataclasses


@dataclasses.dataclass
class CompilationUnit:
    """Everything a backend needs to emit one unit: the post-pipeline IR
    (``result`` — blocks, entry, metas, statics) plus emit context."""

    result: object                 # CompileResult after the PassManager
    name: str = "unit"
    jit: object = None             # owning Lancet (None for pure renderers)
    recompile: object = None       # rebuild closure for invalidation
    report: object = None          # CompileReport to fill in
    options: object = None         # CompileOptions the unit compiled under

    @property
    def param_names(self):
        return self.result.param_names

    @property
    def metas(self):
        return self.result.metas


class Backend(abc.ABC):
    """A code generator consuming canonical post-pipeline IR."""

    #: registry key, e.g. ``"python"``.
    name = None

    @abc.abstractmethod
    def emit(self, unit, **kwargs):
        """Emit ``unit`` (a :class:`CompilationUnit`). The return type is
        backend-specific: a callable ``CompiledFunction`` for Python,
        source text for JS, an expression string for SQL."""


def python_runtime_hooks(jit, metas):
    """The four runtime re-entry closures every generated Python unit
    links against (virtual/method calls back into the interpreter,
    continuation reification, OSR recompilation). Shared by the fresh
    codegen path and the persistent-cache reload path."""
    from repro.compiler.compiled import ContinuationClosure

    vm = jit.vm

    def callv(recv, mname, args):
        return vm.call_virtual(recv, mname, args)

    def callm(method, recv, args):
        return vm.invoke_method(method, recv, args)

    def mkcont(meta_id, lives):
        return ContinuationClosure(vm, metas[meta_id], list(lives))

    def osr(meta_id, lives):
        return jit._osr_execute(metas[meta_id], lives)

    return callv, callm, mkcont, osr


class PythonBackend(Backend):
    """The execution backend: renders the CFG to Python source, compiles
    it with ``exec``, and wraps it with guard/deopt handling."""

    name = "python"

    def emit(self, unit, **kwargs):
        import time

        from repro.compiler.compiled import CompiledFunction
        from repro.lms.codegen_py import PyCodegen

        jit = unit.jit
        result = unit.result
        metas = result.metas
        codegen = PyCodegen(jit.vm, result.statics, metas)
        callv, callm, mkcont, osr = python_runtime_hooks(jit, metas)

        t0 = time.perf_counter()
        fn, source = codegen.generate(result.blocks, result.entry_bid,
                                      result.param_names, callv, callm,
                                      mkcont, osr, optimize=False)
        report = unit.report
        if report is not None:
            report.phases["codegen"] = time.perf_counter() - t0
            report.blocks = len(result.blocks)
            report.stmts = sum(len(b.stmts)
                               for b in result.blocks.values())
        compiled = CompiledFunction(jit, fn, source, metas,
                                    recompile=unit.recompile,
                                    name=unit.name,
                                    warnings=result.warnings)
        compiled.ir = result   # post-pipeline IR, for introspection
        # Persistence bookkeeping: which natives the source links against
        # (re-resolved by name on reload) and anything process-private
        # that makes the source non-persistable.
        compiled.native_refs = dict(codegen.native_refs)
        compiled.persist_blockers = list(codegen.persist_blockers)
        return compiled


_REGISTRY = {}


def register_backend(cls):
    """Class decorator: register a Backend implementation by its name."""
    _REGISTRY[cls.name] = cls
    return cls


register_backend(PythonBackend)


def get_backend(name):
    """Resolve a backend by name (``python`` | ``js`` | ``sql``)."""
    if name not in _REGISTRY:
        # The cross-compilers register themselves on import.
        if name == "js":
            import repro.backends.javascript  # noqa: F401
        elif name == "sql":
            import repro.backends.sql  # noqa: F401
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError("no such backend %r (have: %s)"
                         % (name, ", ".join(sorted(_REGISTRY))))

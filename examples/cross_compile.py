#!/usr/bin/env python
"""Cross-compilation (paper 3.5): the same staged IR targets JavaScript
and SQL.

Run:  python examples/cross_compile.py
"""

from repro import Lancet
from repro.backends.javascript import cross_compile_js
from repro.backends.sql import Table, nested_lookup_grouped, nested_lookup_naive
from repro.backends.sqldb import MiniDB


def javascript_demo():
    print("=== JavaScript: the Koch-snowflake DOM pattern ===")
    jit = Lancet()
    jit.load('''
        def leg(c, n) {
          var i = 0;
          while (i < n) { c.lineTo(i, i * 2); i = i + 1; }
        }
        def snowflake(c, n) {
          c.save();
          c.translate(10, 20);
          c.moveTo(0, 0);
          leg(c, n);
          c.rotate(0 - 120);
          leg(c, n);
          c.closePath();
          c.restore();
        }
    ''')
    js = cross_compile_js(jit, "Main", "snowflake")
    print(js)


def sql_demo():
    print("\n=== SQL / LINQ: bytecode-lifted predicates ===")
    jit = Lancet()
    # The predicate calls p(x), defined elsewhere — expression-tree LINQ
    # breaks here; lifting bytecode does not.
    jit.load("def p(x) { return x < 100; }", module="Lib")
    jit.load("def mk() { return fun(x) => x > 0 && Lib.p(x); }",
             module="Preds")
    pred = jit.vm.call("Preds", "mk")

    db = MiniDB()
    db.create_table("t_item", [
        {"id": 1, "price": 10}, {"id": 2, "price": -4},
        {"id": 3, "price": 250}, {"id": 4, "price": 99},
    ])
    items = Table(db, "t_item", jit)
    res = items.filter("price", pred)
    print("SQL:", res.to_sql())
    print("count:", res.count(), "| sum:", res.sum("price"),
          "| round-trips:", db.trips(), "(scalar reuse: one scan)")

    # Query avalanches: nested per-row lookups vs one GROUP BY.
    db.create_table("t_order", [
        {"order_id": i, "item": 1 + i % 3, "qty": i} for i in range(9)
    ])
    orders = Table(db, "t_order", jit)
    db.reset_log()
    nested_lookup_naive([1, 2, 3], orders, "item")
    print("naive nested lookups: %d round-trips (the avalanche)"
          % db.trips())
    db.reset_log()
    nested_lookup_grouped([1, 2, 3], orders, "item")
    print("grouped plan:         %d round-trip" % db.trips())


if __name__ == "__main__":
    javascript_demo()
    sql_demo()

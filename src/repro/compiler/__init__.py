"""The Lancet core: staged interpretation + abstract interpretation."""

#!/usr/bin/env python
"""The paper's motivating example (Fig. 1/3): CSV processing specialized
to a file's schema at runtime.

The guest library reads the schema from the first line, then compiles the
row-processing loop with `Lancet.compile`; `freeze(indexOf(schema, key))`
turns every access-by-name into access-by-constant-index, and the Record
object is scalar-replaced away entirely.

Run:  python examples/csv_processing.py
"""

import time

from repro import Lancet
from repro.apps import load_app
from repro.apps.csv_baselines import (accessed_keys, cpp_baseline,
                                      generate_csv, library_baseline)


def main():
    lines = generate_csv(rows=15000, cols=20)
    keys = accessed_keys()

    jit = Lancet()
    load_app(jit, "csv", module="CsvApp")

    # Run the guest app: it compiles a loop specialized to this schema and
    # this callback, then processes every row through it.
    t0 = time.perf_counter()
    yes_count, total_len = jit.vm.call("CsvApp", "flagQuery", [lines, keys])
    t_lancet = time.perf_counter() - t0
    print("rows with Flag=yes: %d; total accessed length: %d"
          % (yes_count, total_len))

    # Compare with the baselines.
    t0 = time.perf_counter()
    assert library_baseline(lines, keys) == [yes_count, total_len]
    t_lib = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert cpp_baseline(lines, keys) == [yes_count, total_len]
    t_cpp = time.perf_counter() - t0

    print("\ntimings: Lancet(incl. compile)=%.1fms | generic library=%.1fms "
          "| hand-written=%.1fms" % (t_lancet * 1e3, t_lib * 1e3,
                                     t_cpp * 1e3))

    # Show the specialized loop: no Record allocation, no indexOf — just
    # split + constant indices.
    runner = jit.compile_log[-1][1]
    print("\n--- the specialized row loop ---")
    print(runner.source)
    assert "indexOf" not in runner.source
    assert "_newinst" not in runner.source

    # And the same record printed as key/value pairs, unrolled over the
    # frozen schema (the paper's second snippet).
    small = ["Name,Value,Flag", "A,7,no", "B,2,yes"]
    jit2 = Lancet()
    load_app(jit2, "csv", module="CsvApp")
    jit2.vm.call("CsvApp", "dumpRecords", [small])
    print("\n--- dumpRecords output ---")
    print(jit2.vm.output())


if __name__ == "__main__":
    main()

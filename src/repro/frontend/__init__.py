"""MiniJ: the guest source language (the Scala of this reproduction).

A small class-based language with ``val``/``var`` fields, first-class
lambdas (compiled to synthesized classes, as Scala closures are on the
JVM), and explicit calls into the ``Lancet.*`` JIT API.
"""

from repro.frontend.compiler import compile_source
from repro.frontend.parser import parse

__all__ = ["compile_source", "parse"]

"""Host-side CSV baselines and workload generator for Table 1.

Mapping to the paper's rows (see DESIGN.md):

* ``cpp_baseline`` — the "hand written C++" analogue: a straightforward
  port of Fig. 1's logic to plain host code; column access resolves the
  name with a linear scan of the header, per record (exactly what the
  Scala code ``schema indexOf key`` does and what a direct C++ port with
  ``std::find`` does).
* ``cpp_hashmap_baseline`` — a stronger C++ analogue using a hash map for
  the header (ablation row).
* ``library_baseline`` — the "Scala library" analogue: the generic Record
  abstraction running on the host runtime (CPython here, HotSpot there).
* the Lancet row is guest code from ``csv.mj`` compiled by the JIT.
"""

from __future__ import annotations

import random
import string


def generate_csv(rows, cols=20, seed=0):
    """Synthetic CSV: ``cols`` columns ("Flag", "C1".."Cn"), ``rows`` data
    rows; returns the file content as a list of lines (header first)."""
    rng = random.Random(seed)
    names = ["Flag"] + ["C%d" % i for i in range(1, cols)]
    lines = [",".join(names)]
    letters = string.ascii_lowercase
    for __ in range(rows):
        flag = "yes" if rng.random() < 0.3 else "no"
        fields = [flag] + [
            "".join(rng.choice(letters) for __ in range(rng.randint(3, 9)))
            for __ in range(cols - 1)
        ]
        lines.append(",".join(fields))
    return lines


def accessed_keys(cols=20, count=10):
    """The 10-of-20 columns the paper's workload accesses by name."""
    names = ["Flag"] + ["C%d" % i for i in range(1, cols)]
    return [names[i] for i in range(0, cols, max(1, cols // count))][:count]


# -- baselines ----------------------------------------------------------------

class HostRecord:
    """The generic library abstraction (paper Fig. 1), host-side."""

    __slots__ = ("fields", "schema")

    def __init__(self, fields, schema):
        self.fields = fields
        self.schema = schema

    def __call__(self, key):
        return self.fields[self.schema.index(key)]

    def each(self, f):
        for i, k in enumerate(self.schema):
            f(k, self.fields[i])


def library_baseline(lines, keys):
    """Generic Record library on the host runtime ("Scala Library" row)."""
    schema = lines[0].split(",")
    yes = 0
    total = 0
    for i in range(1, len(lines)):
        rec = HostRecord(lines[i].split(","), schema)
        if rec("Flag") == "yes":
            yes += 1
        for k in keys:
            total += len(rec(k))
    return [yes, total]


def cpp_baseline(lines, keys):
    """Straightforward hand-written reader ("C++" row): per-record
    name-to-column resolution by linear scan, no Record object."""
    schema = lines[0].split(",")
    yes = 0
    total = 0
    for i in range(1, len(lines)):
        fields = lines[i].split(",")
        if fields[schema.index("Flag")] == "yes":
            yes += 1
        for k in keys:
            total += len(fields[schema.index(k)])
    return [yes, total]


def cpp_hashmap_baseline(lines, keys):
    """Stronger hand-written reader: header resolved through a hash map
    (still per access, as a generic C++ CSV reader does)."""
    schema = lines[0].split(",")
    index = {k: i for i, k in enumerate(schema)}
    yes = 0
    total = 0
    for i in range(1, len(lines)):
        fields = lines[i].split(",")
        if fields[index["Flag"]] == "yes":
            yes += 1
        for k in keys:
            total += len(fields[index[k]])
    return [yes, total]


def specialized_by_hand(lines, keys):
    """The upper bound: what the Lancet-generated code should look like —
    indices resolved once, straight-line accesses."""
    schema = lines[0].split(",")
    flag_i = schema.index("Flag")
    key_is = [schema.index(k) for k in keys]
    yes = 0
    total = 0
    for i in range(1, len(lines)):
        fields = lines[i].split(",")
        if fields[flag_i] == "yes":
            yes += 1
        for ki in key_is:
            total += len(fields[ki])
    return [yes, total]

"""Interpreter frames, mirroring the paper's Fig. 6.

``Frame`` holds an array of locals; ``InterpreterFrame`` extends it with a
link to a method, a bytecode index, and an operand stack mapped onto the
tail of the locals array via a top-of-stack pointer (``tos``) — the same
layout the Graal interpreter uses and the same structure the staged
interpreter re-uses with ``Rep`` values in the slots.
"""

from __future__ import annotations


class Frame:
    """A flat array of local slots with a parent link."""

    __slots__ = ("locals", "parent")

    def __init__(self, num_slots, parent=None):
        self.locals = [None] * num_slots
        self.parent = parent

    def set_local(self, index, value):
        self.locals[index] = value

    def get_local(self, index):
        return self.locals[index]


class InterpreterFrame(Frame):
    """A frame executing ``method``; the operand stack occupies slots
    ``[method.num_locals, tos)``."""

    __slots__ = ("method", "bci", "tos")

    def __init__(self, method, parent=None, extra_stack=0):
        super().__init__(method.num_locals + method_stack_size(method)
                         + extra_stack, parent)
        self.method = method
        self.bci = 0
        self.tos = method.num_locals

    def push(self, value):
        if self.tos >= len(self.locals):
            self.locals.append(value)
        else:
            self.locals[self.tos] = value
        self.tos += 1

    def pop(self):
        self.tos -= 1
        v = self.locals[self.tos]
        self.locals[self.tos] = None
        return v

    def peek(self, depth=0):
        return self.locals[self.tos - 1 - depth]

    def stack_values(self):
        """The current operand stack, bottom to top."""
        return self.locals[self.method.num_locals:self.tos]

    def set_stack(self, values):
        base = self.method.num_locals
        for i, v in enumerate(values):
            self.locals[base + i] = v
        self.tos = base + len(values)

    def __repr__(self):
        return "<frame %s@%d stack=%d>" % (
            self.method.qualified_name, self.bci,
            self.tos - self.method.num_locals)


def method_stack_size(method):
    """Memoized conservative operand-stack bound for ``method``."""
    size = getattr(method, "_stack_size", None)
    if size is None:
        from repro.bytecode.classfile import max_stack
        size = max_stack(method.code) + 1
        method._stack_size = size
    return size

"""Deoptimization metadata and frame reconstruction.

Compiled code carries, for every guard and explicit ``slowpath``/
``fastpath`` site, a description of the interpreter state to rebuild: a
chain of frame templates whose slots are either live compiled values,
constants, statics, or *virtual objects* (scalar-replaced allocations that
must be rematerialized on deopt — the same trick Graal uses).

On a guard failure the compiled function raises :class:`DeoptException`;
the wrapper rebuilds :class:`InterpreterFrame` objects and resumes the
interpreter at the recorded bytecode indices (OSR-out). ``fastpath``
instead recompiles the continuation with the live values as constants.
"""

from __future__ import annotations

from repro.interp.frame import InterpreterFrame


class DeoptException(Exception):
    """Raised by compiled code when a speculation fails."""

    __slots__ = ("meta_id", "lives")

    def __init__(self, meta_id, lives):
        self.meta_id = meta_id
        self.lives = lives
        super().__init__("deopt #%d" % meta_id)


# -- slot templates ----------------------------------------------------------
# ("live", i)          -> lives[i]
# ("const", v)         -> v
# ("static", obj)      -> obj
# ("virtual", vobj)    -> rematerialized scalar-replaced object


class VirtualObject:
    """A scalar-replaced allocation recorded in deopt metadata."""

    __slots__ = ("cls", "fields")

    def __init__(self, cls, fields):
        self.cls = cls          # RtClass
        self.fields = fields    # name -> slot template


class VirtualArray:
    """A scalar-replaced array recorded in deopt metadata."""

    __slots__ = ("elems",)

    def __init__(self, elems):
        self.elems = elems      # list of slot templates


class FrameTemplate:
    """One interpreter frame to rebuild: method, resume bci, slot templates."""

    __slots__ = ("method", "bci", "locals_t", "stack_t")

    def __init__(self, method, bci, locals_t, stack_t):
        self.method = method
        self.bci = bci
        self.locals_t = locals_t
        self.stack_t = stack_t


class DeoptMeta:
    """A full deopt site: frame templates from root (caller) to leaf.

    ``kind`` selects the wrapper's reaction: ``interpret`` resumes the
    interpreter; ``recompile`` additionally invalidates the compiled code
    (``stable`` guards); ``osr``/``cont`` are used by ``fastpath`` and
    reified continuations.
    """

    __slots__ = ("frames", "reason", "kind")

    def __init__(self, frames, reason="", kind="interpret"):
        self.frames = frames
        self.reason = reason
        self.kind = kind


def _resolve(template, lives, memo):
    kind = template[0]
    if kind == "live":
        return lives[template[1]]
    if kind == "const":
        return template[1]
    if kind == "static":
        return template[1]
    if kind == "virtual":
        vobj = template[1]
        hit = memo.get(id(vobj))
        if hit is not None:
            return hit
        if isinstance(vobj, VirtualArray):
            arr = [None] * len(vobj.elems)
            memo[id(vobj)] = arr
            for i, t in enumerate(vobj.elems):
                arr[i] = _resolve(t, lives, memo)
            return arr
        from repro.runtime.objects import Obj
        obj = Obj(vobj.cls, {})
        memo[id(vobj)] = obj
        for name, t in vobj.fields.items():
            obj.fields[name] = _resolve(t, lives, memo)
        # Null-fill undeclared-but-present fields.
        for name in vobj.cls.all_fields:
            obj.fields.setdefault(name, None)
        return obj
    raise AssertionError("bad slot template %r" % (template,))


def reconstruct_frames(meta, lives):
    """Rebuild the interpreter frame chain for ``meta``; returns the leaf
    frame (whose parent links reach the root)."""
    memo = {}
    parent = None
    leaf = None
    for ft in meta.frames:
        frame = InterpreterFrame(ft.method, parent=parent)
        for i, t in enumerate(ft.locals_t):
            frame.set_local(i, _resolve(t, lives, memo))
        frame.set_stack([_resolve(t, lives, memo) for t in ft.stack_t])
        frame.bci = ft.bci
        parent = frame
        leaf = frame
    return leaf

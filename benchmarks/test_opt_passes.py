"""Optimization-pass effectiveness on the Table 2 kernels.

The ``runChecked`` variants of k-means and logreg carry
``Lancet.speculate`` bounds assertions; with the analysis-powered passes
on (the default) interval analysis proves them and the compiled code
loses its deoptimization points, GVN/LICM/DCE shrink the IR, and the
result stays bit-for-bit the same. These tests pin all three properties
against an all-passes-off compile of the identical unit.
"""

import re

import pytest

from repro import CompileOptions, Lancet
from repro.apps import load_app
from repro.optiml import load_optiml

OPT_OFF = CompileOptions(opt_gvn=False, opt_licm=False,
                         opt_scalar_replace=False, opt_range_guards=False)


def _kmeans(options):
    from repro.optiml.reference import kmeans_data
    n, k, iters = 2000, 4, 2
    px, py = kmeans_data(n, k)
    jit = Lancet(options=options)
    load_optiml(jit)
    load_app(jit, "kmeans", module="Kmeans")
    jit.delite.register_data(px)
    jit.delite.register_data(py)
    factory_args = [px, py, k, iters]
    cf = jit.vm.call("Kmeans", "makeCompiledChecked", factory_args)
    return {"jit": jit, "cf": cf, "module": "Kmeans",
            "factory_args": factory_args}


def _logreg(options):
    from repro.optiml.reference import logreg_data
    n, d, iters, alpha = 2000, 8, 2, 0.05
    cols, y = logreg_data(n, d)
    jit = Lancet(options=options)
    load_optiml(jit)
    load_app(jit, "logreg", module="Logreg")
    for c in cols:
        jit.delite.register_data(c)
    jit.delite.register_data(y)
    factory_args = [cols, y, iters, alpha]
    cf = jit.vm.call("Logreg", "makeCompiledChecked", factory_args)
    return {"jit": jit, "cf": cf, "module": "Logreg",
            "factory_args": factory_args}


@pytest.fixture(scope="module", params=["kmeans", "logreg"])
def checked_pair(request):
    setup = {"kmeans": _kmeans, "logreg": _logreg}[request.param]
    return {"on": setup(None),                 # defaults: passes on
            "off": setup(OPT_OFF)}


def _final_stmts(cf):
    return cf.report.pass_stats[-1]["stmts_after"]


def test_guard_count_strictly_decreases(checked_pair):
    """Range analysis must prove every speculated bound in the checked
    kernels: zero deopt points with passes on, some without."""
    on, off = checked_pair["on"]["cf"], checked_pair["off"]["cf"]
    assert off.source.count("_DeoptEx") > 0
    assert on.source.count("_DeoptEx") == 0


def test_ir_stmt_count_strictly_decreases(checked_pair):
    on, off = checked_pair["on"]["cf"], checked_pair["off"]["cf"]
    assert _final_stmts(on) < _final_stmts(off)


def test_results_agree(checked_pair):
    on, off = checked_pair["on"]["cf"], checked_pair["off"]["cf"]
    assert on(0) == off(0)


def test_steady_state_code_is_byte_identical(checked_pair):
    """Recompiling the same unit (same VM, same captured data) with the
    passes on is deterministic: the generated source is byte-for-byte
    identical, modulo identity-derived Delite kernel handles
    (``op_<id>``/``dop_<id>`` name a fresh fused-op object per compile;
    they carry no semantics)."""
    def normalize(source):
        return re.sub(r"\b(d?op)_\d+\b", r"\1_X", source)

    s = checked_pair["on"]
    again = s["jit"].vm.call(s["module"], "makeCompiledChecked",
                             s["factory_args"])
    assert normalize(again.source) == normalize(s["cf"].source)

"""Macro installation and lookup.

``install(class_name, method_name, fn)`` registers a macro for a guest
method or native namespace method; ``install_class(class_name, obj)``
registers every public method of a host object, mirroring the paper's::

    Lancet.install(classOf[LancetLib], LancetMacros)

Virtual calls consult the receiver's class chain so macros installed on a
superclass apply to subclasses.
"""

from __future__ import annotations


class MacroRegistry:
    def __init__(self):
        self._macros = {}   # (class_name, method_name) -> fn
        self.telemetry = None

    def install(self, class_name, method_name, fn):
        self._macros[(class_name, method_name)] = fn
        if self.telemetry is not None:
            self.telemetry.record("macro.install",
                                  target="%s.%s" % (class_name, method_name))

    def install_class(self, class_name, macros_obj):
        """Install every public callable attribute of ``macros_obj`` as a
        macro for the same-named method of ``class_name``."""
        for name in dir(macros_obj):
            if name.startswith("_"):
                continue
            fn = getattr(macros_obj, name)
            if callable(fn):
                self.install(class_name, name, fn)

    def uninstall(self, class_name, method_name):
        self._macros.pop((class_name, method_name), None)

    def lookup_static(self, class_name, method_name):
        return self._macros.get((class_name, method_name))

    def lookup_virtual(self, rtclass, method_name):
        """Walk the class chain for an applicable macro."""
        cls = rtclass
        while cls is not None:
            fn = self._macros.get((cls.name, method_name))
            if fn is not None:
                return fn
            cls = cls.superclass
        return None

    def __len__(self):
        return len(self._macros)

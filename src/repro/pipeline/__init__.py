"""The tiered compile pipeline (paper 3.1: ``makeJIT``/``makeHOT``).

Three layers, each explicit and program-visible:

* **Tiers** (:mod:`repro.pipeline.tiers`) — Tier 0 interprets with
  method-call and loop-back-edge counters; Tier 1 is a quick staged
  compile (shallow specialization, minimal guards, no analysis passes)
  for fast warmup; Tier 2 is the full optimizing compile
  (abstract-interpretation fixpoint + the whole analysis pass list).
  A per-VM :class:`TierPolicy` promotes units 0→1→2 on profile counters,
  hot loop back-edges tier up mid-execution through the OSR/snapshot
  machinery, and deopt storms demote with a per-unit failure budget
  before blacklisting back to Tier 0.
* **PassManager** (:mod:`repro.pipeline.passes`) — a declarative,
  per-tier IR pass list (verify → fuse → DCE → guard-elim →
  taint/no-alloc demands) with per-pass telemetry timings and
  before/after block counts.
* **Backend protocol** (:mod:`repro.pipeline.backend`) — a
  :class:`Backend` ABC implemented by the Python, JavaScript, and SQL
  code generators, all consuming one canonical post-pipeline IR.
"""

from repro.pipeline.backend import Backend, CompilationUnit, get_backend
from repro.pipeline.passes import PassManager
from repro.pipeline.tiers import (TIER0, TIER1, TIER2, TIER_T,
                                  TierController, TieredFunction,
                                  TierPolicy, tier_options)
from repro.pipeline.tracing import TraceManager, trace_options

__all__ = ["Backend", "CompilationUnit", "get_backend", "PassManager",
           "TIER0", "TIER1", "TIER2", "TIER_T", "TierController",
           "TieredFunction", "TierPolicy", "tier_options", "TraceManager",
           "trace_options"]

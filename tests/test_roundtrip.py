"""Property-based round-trips: random valid bytecode survives
disassemble→assemble→verify→interpret unchanged, and compiler limits fail
loudly rather than hanging."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompileOptions, Lancet
from repro.bytecode import (ClassFile, MethodBuilder, Op, assemble,
                            disassemble_class, verify_class)
from repro.errors import CompilationError
from repro.interp import Interpreter


@st.composite
def random_method(draw):
    """A random but always-valid straight-line+branch method of one
    parameter, built via MethodBuilder."""
    b = MethodBuilder("f", 1, is_static=True)
    acc = b.alloc_slot()
    b.const(draw(st.integers(-5, 5))).store(acc)
    n_ops = draw(st.integers(1, 8))
    for __ in range(n_ops):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            b.load(acc).const(draw(st.integers(-9, 9))).emit(
                draw(st.sampled_from([Op.ADD, Op.SUB, Op.MUL]))).store(acc)
        elif kind == 1:
            b.load(0).load(acc).emit(Op.ADD).store(acc)
        elif kind == 2:
            # if (acc < k) acc = acc + 1
            skip = b.new_label()
            b.load(acc).const(draw(st.integers(-5, 5))).emit(Op.LT)
            b.jif_false(skip)
            b.load(acc).const(1).emit(Op.ADD).store(acc)
            b.label(skip)
        else:
            b.load(acc).emit(Op.NEG).store(acc)
    b.load(acc).ret_val()
    return b.build()


class TestAssemblerRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(random_method(), st.integers(-10, 10))
    def test_disassemble_assemble_preserves_semantics(self, method, x):
        cf = ClassFile("M")
        cf.add_method(method)
        verify_class(cf)
        vm1 = Interpreter()
        vm1.load_classes([cf])
        expected = vm1.call("M", "f", [x])

        text = disassemble_class(cf)
        cf2 = assemble(text)[0]
        verify_class(cf2)
        vm2 = Interpreter()
        vm2.load_classes([cf2])
        assert vm2.call("M", "f", [x]) == expected

    @settings(max_examples=25, deadline=None)
    @given(random_method(), st.integers(-10, 10))
    def test_compiled_builder_method_matches_interpreter(self, method, x):
        cf = ClassFile("Main")
        cf.add_method(method)
        jit = Lancet()
        jit.vm.load_classes([cf])
        expected = jit.vm.call("Main", "f", [x])
        compiled = jit.compile_function("Main", "f")
        assert compiled(x) == expected


class TestCompilerLimits:
    def test_inline_depth_limit_fails_loudly(self):
        """Mutually recursive inlining under inlineAlways hits the
        explicit depth limit instead of diverging."""
        jit = Lancet(options=CompileOptions(inline_policy="always",
                                            max_inline_depth=30))
        jit.load('''
            def ping(n) { return pong(n); }
            def pong(n) { return ping(n); }
        ''')
        with pytest.raises(CompilationError, match="depth"):
            jit.compile_function("Main", "ping")

    def test_statement_budget(self):
        jit = Lancet(options=CompileOptions(max_stmts=50))
        jit.load('''
            def big(x) {
              var s = x;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1; s = s * 2 + 1;
              return s;
            }
        ''')
        with pytest.raises(CompilationError, match="budget"):
            jit.compile_function("Main", "big")

    def test_unroll_limit_suggests_freeze(self):
        from repro.errors import UnrollError
        jit = Lancet(options=CompileOptions(unroll_limit=8))
        jit.load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.unrollTopLevel(fun() {
                  var i = 0;
                  var acc = [x];
                  while (i < 100) { acc[0] = acc[0] + 1; i = i + 1; }
                  return acc[0];
                });
              });
            }
        ''')
        with pytest.raises(UnrollError, match="freeze"):
            jit.vm.call("Main", "make")

    def test_fixpoint_convergence_on_deep_loop_nest(self):
        """Triple-nested loops converge (widening terminates) and compute
        correctly."""
        jit = Lancet()
        jit.load('''
            def nest(n) {
              var total = 0;
              var i = 0;
              while (i < n) {
                var j = 0;
                while (j < n) {
                  var k = 0;
                  while (k < n) { total = total + 1; k = k + 1; }
                  j = j + 1;
                }
                i = i + 1;
              }
              return total;
            }
        ''')
        compiled = jit.compile_function("Main", "nest")
        assert compiled(5) == 125

"""End-to-end OptiML applications (Table 2): all four implementation
tiers must agree — interpreted library, Lancet-Delite, standalone Delite,
hand-fused numpy ("C++")."""

import numpy as np
import pytest

from repro import Lancet
from repro.apps import load_app
from repro.delite.runtime import DeliteRuntime
from repro.optiml import load_optiml
from repro.optiml.reference import (kmeans_cpp, kmeans_data, kmeans_delite,
                                    logreg_cpp, logreg_data, logreg_delite,
                                    names_data, namescore_fused,
                                    namescore_python)


@pytest.fixture
def jit():
    j = Lancet()
    load_optiml(j)
    return j


class TestKmeans:
    N, K, ITERS = 400, 4, 3

    def test_all_tiers_agree(self, jit):
        px, py = kmeans_data(self.N, self.K)
        load_app(jit, "kmeans", module="Kmeans")
        lib = jit.vm.call("Kmeans", "run", [px, py, self.K, self.ITERS])
        cpp_cx, cpp_cy = kmeans_cpp(px, py, self.K, self.ITERS)
        cf = jit.vm.call("Kmeans", "makeCompiled",
                         [px, py, self.K, self.ITERS])
        ld = cf(0)
        rt = DeliteRuntime()
        d_cx, d_cy = kmeans_delite(rt, px, py, self.K, self.ITERS)
        assert np.allclose(lib[0], cpp_cx) and np.allclose(lib[1], cpp_cy)
        assert np.allclose(ld[0], cpp_cx) and np.allclose(ld[1], cpp_cy)
        assert np.allclose(d_cx, cpp_cx) and np.allclose(d_cy, cpp_cy)

    def test_compiled_uses_delite_ops(self, jit):
        px, py = kmeans_data(100, 2)
        load_app(jit, "kmeans", module="Kmeans")
        cf = jit.vm.call("Kmeans", "makeCompiled", [px, py, 2, 2])
        assert "_drun" in cf.source
        jit.delite.reset_clock()
        cf(0)
        assert jit.delite.ops_run == 4        # 2 iters × (nearest + sums)

    def test_smp_backend_matches(self, jit):
        px, py = kmeans_data(300, 3)
        load_app(jit, "kmeans", module="Kmeans")
        cf = jit.vm.call("Kmeans", "makeCompiled", [px, py, 3, 3])
        jit.delite.configure("seq")
        seq = cf(0)
        jit.delite.configure("smp", cores=4)
        smp = cf(0)
        assert np.allclose(seq[0], smp[0]) and np.allclose(seq[1], smp[1])
        jit.delite.configure("gpu")
        gpu = cf(0)
        assert np.allclose(seq[0], gpu[0])


class TestLogreg:
    def test_all_tiers_agree(self, jit):
        cols, y = logreg_data(300, d=3)
        load_app(jit, "logreg", module="Logreg")
        lib = jit.vm.call("Logreg", "run", [cols, y, 4, 0.1])
        cpp = logreg_cpp(cols, y, 4, 0.1)
        cf = jit.vm.call("Logreg", "makeCompiled", [cols, y, 4, 0.1])
        ld = cf(0)
        rt = DeliteRuntime()
        dl = logreg_delite(rt, cols, y, 4, 0.1)
        assert np.allclose(lib, cpp)
        assert np.allclose(ld, cpp)
        assert np.allclose(dl, cpp)

    def test_macro_declines_on_dynamic_columns(self, jit):
        """compile_function gets cols as a dynamic argument: the macros
        cannot see the column count, so the library loops are inlined
        instead — still correct, just not accelerated."""
        cols, y = logreg_data(60, d=2)
        load_app(jit, "logreg", module="Logreg")
        cf = jit.compile_function("Logreg", "run")
        cpp = logreg_cpp(cols, y, 3, 0.1)
        assert np.allclose(cf(cols, y, 3, 0.1), cpp)


class TestNamescore:
    def test_all_tiers_agree(self, jit):
        names = names_data(500)
        load_app(jit, "namescore", module="Namescore")
        expected = namescore_python(names)
        assert namescore_fused(names) == expected
        lib = jit.vm.call("Namescore", "totalScore", [names])
        assert lib == expected
        cf = jit.vm.call("Namescore", "makeCompiled", [names])
        assert cf(0) == expected

    def test_fused_single_pass(self, jit):
        names = names_data(50)
        load_app(jit, "namescore", module="Namescore")
        cf = jit.vm.call("Namescore", "makeCompiled", [names])
        jit.delite.reset_clock()
        cf(0)
        assert jit.delite.ops_run == 1        # zipWithIndex+map+reduce fused

    def test_compiled_faster_than_interpreted_library(self, jit):
        import time
        names = names_data(3000)
        load_app(jit, "namescore", module="Namescore")
        t0 = time.perf_counter()
        expected = jit.vm.call("Namescore", "totalScore", [names])
        t_lib = time.perf_counter() - t0
        cf = jit.vm.call("Namescore", "makeCompiled", [names])
        cf(0)
        t0 = time.perf_counter()
        got = cf(0)
        t_ld = time.perf_counter() - t0
        assert got == expected
        assert t_ld < t_lib / 2      # paper: ~2x; ours is far larger

"""Trace-vs-method crossover benchmark (ISSUE 6 satellite).

On a megamorphic call-heavy loop the method compiler must residualize
the dynamic dispatch (the receiver class is unknowable at staging time),
so every iteration pays an interpreter ``invoke``. Tier-T records
through the *observed* receivers and stitches one class-guarded bridge
per hot class — an emergent polymorphic inline cache — so its steady
state must be strictly faster than the Tier-2 method compile.

The flip side is asserted too: on monomorphic straight-line loops the
trace tier's back-edge policy defers to the method ladder, which covers
the whole method at least as well as a trace would.
"""

from __future__ import annotations

import time

from repro import CompileOptions, Lancet
from repro.pipeline import TIER2

MEGA_SRC = '''
    class A { def get(x) { return x + 1; } }
    class B { def get(x) { return x * 2; } }
    class C { def get(x) { return x - 3; } }
    def make(k) {
      if (k == 0) { return new A(); }
      if (k == 1) { return new B(); }
      return new C();
    }
    def work(n) {
      var objs = [make(0), make(1), make(2)];
      var acc = 0;
      var i = 0;
      while (i < n) {
        var o = objs[i % 3];
        acc = acc + o.get(i);
        i = i + 1;
      }
      return acc;
    }
'''

MONO_SRC = '''
    def calc(n) {
      var acc = 0;
      var i = 0;
      while (i < n) {
        acc = acc + (i * 3) - 1;
        i = i + 1;
      }
      return acc;
    }
'''

N = 3000
REPEATS = 5


def expected_mega(n):
    fns = [lambda x: x + 1, lambda x: x * 2, lambda x: x - 3]
    return sum(fns[i % 3](i) for i in range(n))


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestTraceCrossover:
    def test_trace_steady_state_beats_method_compile_on_megamorphic(self):
        expected = expected_mega(N)

        # Method leg: a direct Tier-2 optimizing compile of `work`.
        jm = Lancet()
        jm.load(MEGA_SRC)
        compiled = jm.compile_function("Main", "work")
        assert compiled(N) == expected
        t_method = best_of(lambda: compiled(N))

        # Trace leg: warm until every hot receiver class (and the loop
        # exit) is stitched in, then measure steady state.
        jt = Lancet(options=CompileOptions(trace_tier=True,
                                           trace_threshold=10,
                                           bridge_threshold=3))
        jt.load(MEGA_SRC)
        for __ in range(10):
            assert jt.vm.call("Main", "work", [N]) == expected
        stats = jt.stats()["traces"]
        assert stats["compiles"] >= 1
        assert stats["stitches"] >= 2
        t_trace = best_of(lambda: jt.vm.call("Main", "work", [N]))

        assert t_trace < t_method, (
            "Tier-T steady state (%.4fs) should beat the Tier-2 method "
            "compile (%.4fs) on a megamorphic loop" % (t_trace, t_method))

    def test_monomorphic_loop_prefers_method_tier(self):
        j = Lancet(options=CompileOptions(trace_tier=True,
                                          trace_threshold=10))
        j.load(MONO_SRC)
        tf = j.compile_tiered("Main", "calc")
        expected = sum(i * 3 - 1 for i in range(N))
        for __ in range(10):
            assert tf(N) == expected
        # The method ladder promoted the unit; Tier T never recorded.
        assert tf.tier == TIER2
        assert j.stats()["traces"]["recordings"] == 0
        assert j.stats()["traces"]["traces"] == {}
